"""Parallel experiment harness: determinism, disk cache, per-run stats.

The contract under test (docs/harness.md): fanning the evaluation grid
across any number of worker processes — cold or warm, with or without the
on-disk trace cache — produces byte-identical simulated results to the
classic serial loop.
"""

import json
import os
import pickle

import pytest

from repro.harness.pool import (
    COLUMNS,
    CellTask,
    plan_suite,
    run_cells,
    run_suite,
    suite_bench_payload,
)
from repro.harness.runner import (
    aggregate_reports,
    run_versapipe,
    run_workload_models,
)
from repro.harness.tracecache import (
    PROCESS_CACHE_DIRS,
    TRACE_DISK_FORMAT_VERSION,
    DiskTraceStore,
    TraceCache,
    TraceCacheStats,
    process_cache,
    workload_fingerprint,
)
from repro.workloads.registry import get_workload

WORKLOADS = ["ldpc", "reyes"]


def suite_json(result):
    return json.dumps(suite_bench_payload(result), sort_keys=True)


class TestPlan:
    def test_canonical_order(self):
        tasks = plan_suite(["b", "a"], devices=("K20c", "GTX1080"))
        assert tasks[0] == CellTask("b", "baseline", "K20c")
        assert [t.workload for t in tasks[:6]] == ["b"] * 6
        assert [t.column for t in tasks[:3]] == list(COLUMNS)
        assert tasks[3].device == "GTX1080"

    def test_default_plan_covers_all_workloads(self):
        tasks = plan_suite()
        assert len(tasks) == 6 * 3
        assert len({t.workload for t in tasks}) == 6


class TestDeterminism:
    """workers=N is byte-identical to workers=1 — the tentpole pin."""

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_parallel_suite_matches_serial(self, workers):
        serial = run_suite(workloads=WORKLOADS, workers=1, observe=True)
        parallel = run_suite(
            workloads=WORKLOADS, workers=workers, observe=True
        )
        assert suite_json(parallel) == suite_json(serial)

    def test_parallel_merged_reports_match_serial(self):
        # Two devices -> 12 observed cells, exercising the chunked
        # (fixed fan-in) report reduction tree beyond one chunk.
        devices = ("K20c", "GTX1080")
        serial = run_suite(
            workloads=WORKLOADS, devices=devices, workers=1, observe=True
        )
        parallel = run_suite(
            workloads=WORKLOADS, devices=devices, workers=4, observe=True
        )
        assert suite_json(parallel) == suite_json(serial)
        agg_serial = aggregate_reports(serial.cells).to_dict()
        agg_parallel = aggregate_reports(parallel.cells, workers=4).to_dict()
        assert json.dumps(agg_parallel, sort_keys=True) == json.dumps(
            agg_serial, sort_keys=True
        )

    def test_aggregate_histogram_percentiles_worker_invariant(self):
        """Property: the merged report's latency histograms — and the
        percentiles derived from them — are identical whichever worker
        count folded the per-cell reports, including the fan-in-8
        chunked reduction (12 observed cells > one chunk)."""
        devices = ("K20c", "GTX1080")
        suite = run_suite(
            workloads=WORKLOADS, devices=devices, workers=2, observe=True
        )
        observed = [
            cell for cell in suite.cells if cell.result.report is not None
        ]
        assert len(observed) > 8  # forces the chunk-tree path
        reference = aggregate_reports(suite.cells, workers=1).to_dict()
        for workers in (2, 3, 5):
            merged = aggregate_reports(suite.cells, workers=workers).to_dict()
            assert json.dumps(merged, sort_keys=True) == json.dumps(
                reference, sort_keys=True
            )
        # The percentile fields themselves must be populated, not just
        # vacuously equal empty histograms.
        latencies = reference["stage_latency"]
        assert latencies
        for hist in latencies.values():
            assert hist["count"] > 0
            assert hist["p50"] <= hist["p99"]

    def test_parallel_with_shared_disk_cache_matches_serial(self, tmp_path):
        serial = run_suite(workloads=WORKLOADS, workers=1, observe=True)
        cold = run_suite(
            workloads=WORKLOADS,
            workers=4,
            observe=True,
            cache_dir=str(tmp_path / "traces"),
        )
        warm = run_suite(
            workloads=WORKLOADS,
            workers=4,
            observe=True,
            cache_dir=str(tmp_path / "traces"),
        )
        assert suite_json(cold) == suite_json(serial)
        assert suite_json(warm) == suite_json(serial)
        # Where a warm hit lands (worker memory vs the shared disk
        # store) depends on which persistent worker serves the shard;
        # only the placement-agnostic totals are deterministic.
        assert warm.cache_stats.total_hits >= 1
        assert warm.cache_stats.misses == 0

    def test_warm_dispatch_stats_are_per_dispatch_deltas(self, tmp_path):
        """Reused workers must report each dispatch's counters, not their
        lifetime totals (which span every suite the process served)."""
        cache_dir = str(tmp_path / "traces")
        run_suite(workloads=WORKLOADS, workers=4, cache_dir=cache_dir)
        first = run_suite(workloads=WORKLOADS, workers=4, cache_dir=cache_dir)
        second = run_suite(
            workloads=WORKLOADS, workers=4, cache_dir=cache_dir
        )
        # Both warm suites replay the same plan, so their per-dispatch
        # hit totals are equal — under lifetime accounting the second
        # would double-count everything the workers served before it.
        assert first.cache_stats.misses == 0
        assert second.cache_stats.misses == 0
        assert first.cache_stats.total_hits == second.cache_stats.total_hits
        assert first.cache_stats.total_hits >= 1

    def test_run_workload_models_parallel_matches_serial(self, tmp_path):
        spec = get_workload("ldpc")
        params = spec.quick_params()
        serial = run_workload_models("ldpc", params=params, workers=1)
        parallel = run_workload_models(
            "ldpc",
            params=params,
            workers=4,
            cache_dir=str(tmp_path / "traces"),
        )
        for column in COLUMNS:
            a, b = serial[column], parallel[column]
            assert a.model == b.model
            assert a.time_ms == b.time_ms
            assert a.result.cycles == b.result.cycles
            assert a.result.device_metrics.kernel_launches == (
                b.result.device_metrics.kernel_launches
            )
            assert {
                name: (s.tasks, s.items_emitted, s.busy_cycles)
                for name, s in a.result.stage_stats.items()
            } == {
                name: (s.tasks, s.items_emitted, s.busy_cycles)
                for name, s in b.result.stage_stats.items()
            }

    def test_run_versapipe_parallel_matches_serial(self):
        spec = get_workload("reyes")
        params = spec.quick_params()
        serial = run_versapipe(spec, _k20c(), params, cache=TraceCache())
        parallel = run_versapipe(
            spec, _k20c(), params, cache=TraceCache(), workers=2
        )
        assert parallel.time_ms == serial.time_ms
        assert parallel.result.cycles == serial.result.cycles

    def test_workers_zero_rejected(self):
        with pytest.raises(ValueError):
            run_cells(plan_suite(WORKLOADS), workers=0)
        with pytest.raises(ValueError):
            run_workload_models("ldpc", workers=0)


def _k20c():
    from repro.gpu.specs import K20C

    return K20C


class TestDiskCache:
    def _fingerprint(self, name="ldpc"):
        spec = get_workload(name)
        return spec, workload_fingerprint(spec, spec.quick_params())

    def test_roundtrip_and_entry_count(self, tmp_path):
        cache = TraceCache(disk_dir=str(tmp_path))
        spec = get_workload("ldpc")
        params = spec.quick_params()
        run_versapipe(spec, _k20c(), params, cache=cache)
        assert cache.stores == 1
        assert cache.disk.entry_count() == 1
        # A fresh process-equivalent: new cache over the same directory.
        fresh = TraceCache(disk_dir=str(tmp_path))
        key = workload_fingerprint(spec, params)
        assert fresh.get(key) is not None
        assert fresh.disk_hits == 1 and fresh.misses == 0
        # Now resident in memory too.
        assert fresh.get(key) is not None
        assert fresh.hits == 1

    def test_corrupted_entry_recomputes_cleanly(self, tmp_path):
        cache = TraceCache(disk_dir=str(tmp_path))
        spec = get_workload("ldpc")
        params = spec.quick_params()
        baseline = run_versapipe(spec, _k20c(), params, cache=cache)
        key = workload_fingerprint(spec, params)
        path = cache.disk.path_for(key)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle at all")
        fresh = TraceCache(disk_dir=str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.misses == 1 and fresh.disk_misses == 1
        again = run_versapipe(spec, _k20c(), params, cache=fresh)
        assert again.time_ms == baseline.time_ms
        assert again.result.cycles == baseline.result.cycles
        # The recompute overwrote the corrupt entry with a good one.
        assert TraceCache(disk_dir=str(tmp_path)).get(key) is not None

    def test_stale_schema_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(disk_dir=str(tmp_path))
        spec = get_workload("ldpc")
        params = spec.quick_params()
        run_versapipe(spec, _k20c(), params, cache=cache)
        key = workload_fingerprint(spec, params)
        path = cache.disk.path_for(key)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["schema"] = -1
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        fresh = TraceCache(disk_dir=str(tmp_path))
        assert fresh.get(key) is None

    def test_stale_format_entry_is_a_miss(self, tmp_path):
        store = DiskTraceStore(str(tmp_path))
        spec, key = self._fingerprint()
        cache = TraceCache(disk_dir=str(tmp_path))
        run_versapipe(spec, _k20c(), spec.quick_params(), cache=cache)
        with open(store.path_for(key), "rb") as fh:
            payload = pickle.load(fh)
        assert payload["format"] == TRACE_DISK_FORMAT_VERSION
        payload["format"] = TRACE_DISK_FORMAT_VERSION + 1
        with open(store.path_for(key), "wb") as fh:
            pickle.dump(payload, fh)
        assert store.load(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        store = DiskTraceStore(str(tmp_path))
        spec, key = self._fingerprint()
        cache = TraceCache(disk_dir=str(tmp_path))
        run_versapipe(spec, _k20c(), spec.quick_params(), cache=cache)
        other = "ff" + key[2:]
        os.makedirs(os.path.dirname(store.path_for(other)), exist_ok=True)
        os.replace(store.path_for(key), store.path_for(other))
        assert store.load(other) is None

    def test_clear_disk_layer(self, tmp_path):
        cache = TraceCache(disk_dir=str(tmp_path))
        spec = get_workload("ldpc")
        run_versapipe(spec, _k20c(), spec.quick_params(), cache=cache)
        assert cache.disk.entry_count() == 1
        assert cache.disk.clear() == 1
        assert cache.disk.entry_count() == 0

    def test_memory_clear_keeps_disk(self, tmp_path):
        cache = TraceCache(disk_dir=str(tmp_path))
        spec = get_workload("ldpc")
        run_versapipe(spec, _k20c(), spec.quick_params(), cache=cache)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0
        assert cache.disk.entry_count() == 1


class TestPerRunStats:
    """Satellite: stats report per-run deltas, not process-lifetime totals."""

    def test_last_run_is_a_delta(self):
        cache = TraceCache()
        spec = get_workload("ldpc")
        params = spec.quick_params()
        run_versapipe(spec, _k20c(), params, cache=cache)
        first = cache.last_run
        assert first.misses == 1  # the recording run
        run_versapipe(spec, _k20c(), params, cache=cache)
        second = cache.last_run
        # The second call replays everything: no misses leak over from
        # the first call's counters.
        assert second.misses == 0
        assert second.hits >= 1
        assert cache.misses == 1  # lifetime totals still accumulate

    def test_run_workload_models_sets_last_run(self):
        cache = TraceCache()
        run_workload_models("ldpc", cache=cache)
        assert cache.last_run is not None
        assert cache.last_run.misses == 1
        run_workload_models("ldpc", cache=cache)
        assert cache.last_run.misses == 0
        assert cache.last_run.hits >= 1

    def test_stats_arithmetic(self):
        a = TraceCacheStats(hits=5, misses=2, disk_hits=1, stores=3)
        b = TraceCacheStats(hits=2, misses=1, disk_hits=1, stores=1)
        assert (a - b).hits == 3 and (a - b).stores == 2
        assert (a + b).misses == 3
        assert a.total_hits == 6
        assert "disk: 1 hits" in a.describe()
        assert a.to_dict()["stores"] == 3


class TestProcessCacheRegistry:
    """The per-process persistent caches reused workers replay from."""

    def test_same_directory_same_cache(self, tmp_path):
        target = str(tmp_path / "traces")
        assert process_cache(target) is process_cache(target)
        # Path spelling doesn't split the cache.
        alias = str(tmp_path / "." / "traces")
        assert process_cache(alias) is process_cache(target)

    def test_distinct_directories_distinct_caches(self, tmp_path):
        a = process_cache(str(tmp_path / "a"))
        b = process_cache(str(tmp_path / "b"))
        assert a is not b
        assert a.disk is not None and b.disk is not None

    def test_registry_is_bounded_lru(self, tmp_path):
        first = process_cache(str(tmp_path / "dir0"))
        for index in range(1, PROCESS_CACHE_DIRS + 1):
            process_cache(str(tmp_path / f"dir{index}"))
        # dir0 was the least recently used entry and fell out; asking
        # again builds a fresh cache (empty counters, empty LRU).
        assert process_cache(str(tmp_path / "dir0")) is not first
