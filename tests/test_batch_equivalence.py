"""Batched stage execution must be bit-identical to the scalar path.

Three layers of guarantees, each checked for all six workloads:

* **Trace level** — expanding the task graph with unlimited batching
  produces byte-identical TaskCost streams, emit orders, child id
  assignments and output payloads (dtype, shape and every element) as a
  ``batch_size=1`` scalar walk.
* **Schedule level** — end-to-end simulated runs (baseline, megakernel
  and the tuned VersaPipe plan) report identical cycles, times and
  per-stage statistics whatever the batch size.
* **Replay level** — the harness's compute-once/simulate-many trace
  cache returns the same :class:`RunResult` as a cold functional run for
  every model, and its content fingerprint invalidates whenever a
  parameter or the seed changes.
"""

import dataclasses
from collections import deque

import numpy as np
import pytest

from repro.core.executor import RecordingExecutor
from repro.harness import (
    TraceCache,
    run_workload_models,
    workload_fingerprint,
)
from repro.workloads.registry import all_workloads, get_workload

WORKLOADS = sorted(all_workloads())


def _payload_equal(a, b) -> bool:
    """Deep bit-level equality, including dtypes and dataclass fields."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and bool(np.array_equal(a, b))
        )
    if dataclasses.is_dataclass(a):
        return all(
            _payload_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(
            _payload_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, float):
        return a == b or (np.isnan(a) and np.isnan(b))
    return a == b


def _record_trace(name: str, batch_size):
    """Breadth-first task-graph expansion at the given batch size."""
    spec = get_workload(name)
    params = spec.quick_params()
    pipeline = spec.build_pipeline(params)
    executor = RecordingExecutor(
        pipeline, batch_size=batch_size, record_outputs=True
    )
    frontier = deque()
    for stage, payloads in spec.initial_items(params).items():
        for payload in payloads:
            frontier.append((stage, executor.wrap_initial(stage, payload)))
    while frontier:
        stage, item = frontier.popleft()
        batch = [item]
        while frontier and frontier[0][0] == stage:
            batch.append(frontier.popleft()[1])
        for result in executor.run_batch(stage, batch):
            frontier.extend(result.children)
    return executor.trace


@pytest.mark.parametrize("name", WORKLOADS)
def test_batched_trace_bit_identical(name):
    scalar = _record_trace(name, batch_size=1)
    batched = _record_trace(name, batch_size=None)
    assert len(scalar.nodes) == len(batched.nodes)
    for a, b in zip(scalar.nodes, batched.nodes):
        assert a.stage == b.stage, a.node_id
        assert a.cost == b.cost, a.node_id  # byte-identical TaskCost
        assert a.children == b.children, a.node_id  # emit order + ids
        assert a.n_outputs == b.n_outputs, a.node_id
    assert set(scalar.recorded_outputs) == set(batched.recorded_outputs)
    for node_id, outputs in scalar.recorded_outputs.items():
        others = batched.recorded_outputs[node_id]
        assert len(outputs) == len(others)
        for a, b in zip(outputs, others):
            assert _payload_equal(a, b), (name, node_id)


@pytest.mark.parametrize("name", WORKLOADS)
def test_batched_chunking_matches_scalar(name):
    """A small batch-size cap chunks differently but must not change
    anything: grouping is order-preserving at every cap."""
    scalar = _record_trace(name, batch_size=1)
    capped = _record_trace(name, batch_size=3)
    assert [n.cost for n in scalar.nodes] == [n.cost for n in capped.nodes]
    assert [n.children for n in scalar.nodes] == [
        n.children for n in capped.nodes
    ]


def _results_identical(a, b):
    assert a.time_ms == b.time_ms
    assert a.cycles == b.cycles
    assert len(a.outputs) == len(b.outputs)
    assert a.stage_stats == b.stage_stats
    metrics_a, metrics_b = a.device_metrics, b.device_metrics
    assert metrics_a.kernel_launches == metrics_b.kernel_launches
    assert metrics_a.blocks_launched == metrics_b.blocks_launched


@pytest.mark.parametrize("name", WORKLOADS)
def test_models_schedule_preserving(name):
    """End to end: simulated results are independent of the batch size
    for every execution model of the Table 2 columns."""
    params = get_workload(name).quick_params()
    scalar = run_workload_models(name, params=params, batch_size=1, cache=None)
    batched = run_workload_models(
        name, params=params, batch_size=None, cache=None
    )
    for column in ("baseline", "megakernel", "versapipe"):
        _results_identical(scalar[column].result, batched[column].result)


class TestTraceReuse:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_replay_matches_cold_run(self, name):
        params = get_workload(name).quick_params()
        cold = run_workload_models(name, params=params, cache=None)
        cache = TraceCache()
        warm = run_workload_models(name, params=params, cache=cache)
        for column in ("baseline", "megakernel", "versapipe"):
            _results_identical(cold[column].result, warm[column].result)
        # The first column records; every later one replays the trace.
        assert not warm["baseline"].replayed
        assert warm["megakernel"].replayed
        assert warm["versapipe"].replayed
        assert cache.misses == 1
        assert cache.hits >= 2

    def test_fingerprint_stable_across_instances(self):
        spec = get_workload("pyramid")
        assert workload_fingerprint(
            spec, spec.quick_params()
        ) == workload_fingerprint(spec, spec.quick_params())

    def test_fingerprint_invalidates_on_param_change(self):
        spec = get_workload("pyramid")
        params = spec.quick_params()
        resized = dataclasses.replace(params, width=params.width + 2)
        assert workload_fingerprint(spec, params) != workload_fingerprint(
            spec, resized
        )

    def test_fingerprint_invalidates_on_seed_change(self):
        spec = get_workload("pyramid")
        params = spec.quick_params()
        reseeded = dataclasses.replace(params, seed=params.seed + 1)
        assert workload_fingerprint(spec, params) != workload_fingerprint(
            spec, reseeded
        )

    def test_fingerprint_distinguishes_workloads(self):
        pyramid = get_workload("pyramid")
        fd = get_workload("face_detection")
        assert workload_fingerprint(
            pyramid, pyramid.quick_params()
        ) != workload_fingerprint(fd, fd.quick_params())

    def test_seed_change_misses_the_cache(self):
        spec = get_workload("ldpc")
        params = spec.quick_params()
        cache = TraceCache()
        run_workload_models("ldpc", params=params, cache=cache)
        reseeded = dataclasses.replace(params, seed=params.seed + 1)
        misses_before = cache.misses
        run_workload_models("ldpc", params=reseeded, cache=cache)
        assert cache.misses == misses_before + 1  # fresh functional run
        assert len(cache) == 2  # both traces retained

    def test_lru_eviction_bounds_entries(self):
        cache = TraceCache(max_entries=1)
        spec = get_workload("ldpc")
        params = spec.quick_params()
        run_workload_models("ldpc", params=params, cache=cache)
        reseeded = dataclasses.replace(params, seed=params.seed + 1)
        run_workload_models("ldpc", params=reseeded, cache=cache)
        assert len(cache) == 1
        # The first trace was evicted: running it again must miss.
        misses_before = cache.misses
        run_workload_models("ldpc", params=params, cache=cache)
        assert cache.misses == misses_before + 1
