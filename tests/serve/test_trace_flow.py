"""Chrome-trace export of request spans: flow-linked across queue hops."""

import json

from repro.obs import Observer
from repro.obs.export import REQUESTS_PID, chrome_trace
from repro.serve import ServeConfig, serve_workload


def _traced_run(tmp_path):
    observer = Observer()
    report = serve_workload(
        ServeConfig(
            workload="ldpc",
            arrival_spec="poisson:0.5",
            duration_ms=8.0,
            slo_ms=5.0,
            seed=2,
        ),
        observer=observer,
    )
    path = tmp_path / "serve_trace.json"
    observer.write_trace(str(path), label="serve")
    return report, json.loads(path.read_text())


class TestRequestFlows:
    def test_every_request_has_one_flow_chain(self, tmp_path):
        report, trace = _traced_run(tmp_path)
        flows = [
            e
            for e in trace["traceEvents"]
            if e.get("cat") == "request" and e.get("ph") in ("s", "t", "f")
        ]
        assert flows, "no flow events exported"
        by_rid = {}
        for event in flows:
            by_rid.setdefault(event["id"], []).append(event)
        assert len(by_rid) == report.completed
        for rid, chain in by_rid.items():
            chain.sort(key=lambda e: e["ts"])
            phases = [e["ph"] for e in chain]
            # One flow start, one binding end, steps in between.
            assert phases[0] == "s", rid
            assert phases[-1] == "f", rid
            assert phases.count("s") == 1 and phases.count("f") == 1
            assert all(ph == "t" for ph in phases[1:-1])
            finish = chain[-1]
            assert finish["bp"] == "e"

    def test_request_spans_on_request_process(self, tmp_path):
        report, trace = _traced_run(tmp_path)
        slices = [
            e
            for e in trace["traceEvents"]
            if e.get("pid") == REQUESTS_PID and e.get("ph") == "X"
        ]
        assert slices
        for event in slices:
            assert event["dur"] >= 0
            assert "queue_wait_us" in event["args"]
            assert event["args"]["queue_wait_us"] >= 0
        # One slice per completed stage visit.
        visits = sum(h.count for h in report.stage_wait.values())
        assert len(slices) == visits

    def test_request_process_named(self, tmp_path):
        _report, trace = _traced_run(tmp_path)
        meta = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e.get("pid") == REQUESTS_PID
        ]
        assert any(e["args"]["name"] == "requests" for e in meta)

    def test_arrival_instants_exported(self, tmp_path):
        report, trace = _traced_run(tmp_path)
        arrivals = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "i" and e.get("pid") == REQUESTS_PID
        ]
        assert len(arrivals) == report.requests

    def test_batch_traces_unchanged(self):
        # A batch (non-serving) trace has no request process at all.
        trace = chrome_trace([], spec=_spec())
        pids = {e.get("pid") for e in trace["traceEvents"]}
        assert REQUESTS_PID not in pids


def _spec():
    from repro.gpu.specs import K20C

    return K20C
