"""The load-adaptive serving control plane: admission, batching, re-tune.

Unit tests pin the controller pieces (spec parsing, shed decisions,
batch-size targets, hysteresis windows) and the run-context hooks they
ride on (``release_arrivals``, ``batch_governor``); the end-to-end tests
pin the adaptive driver contracts from the ROADMAP serving item — exact
shed accounting, byte-identical reports for any worker count, exactly
one re-tune per sustained load shift, and adaptive goodput at least
matching the static plan on the same schedule.
"""

import json

import pytest

from repro.core.errors import ConfigurationError, ExecutionError
from repro.core.executor import FunctionalExecutor
from repro.core.runcontext import RunContext
from repro.gpu import GPUDevice, K20C
from repro.obs import Observer
from repro.serve import (
    ServeConfig,
    merge_serve_reports,
    run_serve_cells,
    serve_workload,
)
from repro.serve.controller import (
    AdmissionSpecError,
    BatchFormer,
    DropTailAdmission,
    LatencyPredictor,
    RetuneController,
    ServeController,
    SloEwmaAdmission,
    parse_admission_spec,
)
from repro.workloads.registry import get_workload


def _payload_json(report):
    return json.dumps(report.payload(), sort_keys=True)


def _shift_trace(tmp_path, name="shift.txt"):
    """A deterministic two-phase schedule: 1 req/ms for 10 ms, then
    8 req/ms for 6 ms — a clean x8 sustained rate shift."""
    offsets = [0.5 + i for i in range(10)]
    offsets += [10.0 + i * 0.125 for i in range(48)]
    path = tmp_path / name
    path.write_text("\n".join(f"{t:g}" for t in offsets))
    return str(path)


@pytest.fixture(scope="module")
def shift_trace(tmp_path_factory):
    """One shared trace file: its path lands in report payloads, so the
    byte-identity tests need the same file across parametrized runs."""
    return _shift_trace(tmp_path_factory.mktemp("arrivals"))


class TestAdmissionSpec:
    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("none:1", "takes no argument"),
            ("drop-tail", "needs a queue cap"),
            ("drop-tail:", "needs a queue cap"),
            ("drop-tail:x", "must be an integer"),
            ("drop-tail:0", "must be >= 1"),
            ("slo-ewma:abc", "must be a number"),
            ("slo-ewma:0", "must be > 0"),
            ("slo-ewma:-1", "must be > 0"),
            ("random-drop", "unknown admission policy"),
        ],
    )
    def test_rejects_malformed_specs(self, spec, fragment):
        with pytest.raises(AdmissionSpecError, match=fragment):
            parse_admission_spec(spec)

    def test_parses_valid_specs(self):
        assert parse_admission_spec("none").kind == "none"
        tail = parse_admission_spec("drop-tail:32")
        assert isinstance(tail, DropTailAdmission) and tail.cap == 32
        ewma = parse_admission_spec("slo-ewma")
        assert isinstance(ewma, SloEwmaAdmission) and ewma.margin == 1.0
        assert parse_admission_spec("slo-ewma:0.8").margin == 0.8

    def test_describe_round_trips(self):
        for spec in ("none", "drop-tail:16", "slo-ewma:1.5"):
            assert parse_admission_spec(spec).describe() == spec

    def test_serve_config_validates_admission(self):
        with pytest.raises(ConfigurationError, match="unknown admission"):
            ServeConfig(
                workload="ldpc",
                arrival_spec="poisson:0.5",
                duration_ms=5.0,
                slo_ms=5.0,
                admission="bogus",
            )


class TestAdmissionPolicies:
    def _controller(self, admission, slo_ms=5.0):
        return ServeController(
            admission=admission, slo_ms=slo_ms, window_ms=1.0
        )

    def test_none_never_sheds(self):
        controller = self._controller("none")
        assert not controller.should_shed()
        assert controller.shed == 0

    def test_drop_tail_sheds_at_cap(self):
        controller = self._controller("drop-tail:3")
        controller._backlog = {"a": 1, "b": 1}
        assert not controller.should_shed()
        controller._backlog["b"] = 2
        assert controller.should_shed()
        assert controller.shed == 1

    def test_slo_ewma_cold_start_admits(self):
        controller = self._controller("slo-ewma")
        controller.predictor.note_visit("s", 100.0, 100.0)
        # No completed request yet: prediction is 0, admit everything.
        assert not controller.should_shed()

    def test_slo_ewma_sheds_on_predicted_blowout(self):
        controller = self._controller("slo-ewma", slo_ms=5.0)
        predictor = controller.predictor
        predictor.note_visit("s", wait_ms=4.0, service_ms=3.0)
        predictor.note_request({"s": 1})
        assert predictor.predicted_latency_ms() == pytest.approx(7.0)
        assert controller.should_shed()
        # A laxer margin tolerates the same prediction.
        lax = self._controller("slo-ewma:2.0", slo_ms=5.0)
        lax.predictor.note_visit("s", 4.0, 3.0)
        lax.predictor.note_request({"s": 1})
        assert not lax.should_shed()


class TestLatencyPredictor:
    def test_prediction_sums_stage_visit_costs(self):
        predictor = LatencyPredictor()
        predictor.note_visit("a", wait_ms=1.0, service_ms=2.0)
        predictor.note_visit("b", wait_ms=0.5, service_ms=0.5)
        predictor.note_request({"a": 2, "b": 1})
        # 2 visits * (1+2) + 1 visit * (0.5+0.5)
        assert predictor.predicted_latency_ms() == pytest.approx(7.0)

    def test_ewma_tracks_recent_samples(self):
        predictor = LatencyPredictor()
        predictor.note_visit("a", 1.0, 1.0)
        predictor.note_request({"a": 1})
        low = predictor.predicted_latency_ms()
        for _ in range(20):
            predictor.note_visit("a", 10.0, 10.0)
        assert predictor.predicted_latency_ms() > low * 5


class TestBatchFormer:
    def _former(self, max_batch=16, slo_ms=10.0):
        return BatchFormer(slo_ms, max_batch, LatencyPredictor())

    def test_idle_pipeline_pops_singles(self):
        assert self._former().target("s", 0) == 1

    def test_target_grows_with_depth(self):
        former = self._former(max_batch=16)
        targets = [former.target("s", depth) for depth in (0, 4, 8, 64, 1024)]
        assert targets == sorted(targets)
        assert targets[0] == 1
        # Depth pressure saturates asymptotically just below the
        # ceiling; only SLO pressure (clamped to 1.0) reaches it.
        assert targets[-1] == 15

    def test_slo_pressure_grows_batches(self):
        former = self._former(max_batch=16, slo_ms=10.0)
        former.predictor.note_visit("s", 5.0, 5.0)
        former.predictor.note_request({"s": 1})
        # Predicted latency == budget: full throughput mode even when
        # the queue itself is shallow.
        assert former.target("s", 1) == 16

    def test_max_batch_one_is_always_one(self):
        former = self._former(max_batch=1)
        assert former.target("s", 10**6) == 1

    def test_controller_clamps_never_raises_cap(self):
        controller = ServeController(
            admission="none", slo_ms=10.0, window_ms=1.0, max_batch=64
        )
        controller._backlog = {"s": 10**6}
        assert controller.batch_limit("s", 4) == 4
        controller._backlog = {"s": 0}
        assert controller.batch_limit("s", 64) == 1


class TestRetuneController:
    def _feed_window(self, rc, start_ms, rate_per_ms, window_ms=1.0):
        for i in range(int(rate_per_ms * window_ms)):
            rc.note(start_ms + i / max(rate_per_ms, 1.0), arrival=True)

    def test_warmup_then_anchor(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        for w in range(4):
            self._feed_window(rc, float(w), 4.0)
        rc.note(4.5, arrival=True)
        assert rc.rate_anchor == pytest.approx(4.0)
        assert rc.pending is None

    def test_idle_warmup_anchors_at_first_loaded_window(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        # Five empty windows roll by before any load shows up; the
        # leading idle must not make the steady 4/ms look like a shift.
        for w in range(5, 10):
            self._feed_window(rc, float(w), 4.0)
        rc.note(10.5, arrival=True)
        assert rc.pending is None
        assert rc.rate_anchor == pytest.approx(4.0)

    def test_arms_on_rate_upshift(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        for w in range(4):
            self._feed_window(rc, float(w), 2.0)
        for w in range(4, 8):
            self._feed_window(rc, float(w), 16.0)
        rc.note(8.5, arrival=True)
        assert rc.pending is not None
        assert "arrival-rate" in rc.pending

    def test_arms_on_rate_downshift(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        for w in range(4):
            self._feed_window(rc, float(w), 16.0)
        for w in range(4, 10):
            self._feed_window(rc, float(w), 2.0)
        rc.note(10.5, arrival=True)
        assert rc.pending is not None

    def test_sub_ratio_wobble_stays_quiet(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        rates = [4.0, 5.0, 3.0, 5.0, 4.0, 6.0, 4.0, 5.0]
        for w, rate in enumerate(rates):
            self._feed_window(rc, float(w), rate)
        rc.note(float(len(rates)) + 0.5, arrival=True)
        assert rc.pending is None

    def test_attainment_collapse_arms(self):
        rc = RetuneController(window_ms=1.0, ratio=100.0)
        for w in range(4):
            self._feed_window(rc, float(w), 4.0)
            for i in range(4):
                rc.note(w + 0.2 + i * 0.1, completion=True, good=True)
        for w in range(4, 10):
            self._feed_window(rc, float(w), 4.0)
            for i in range(4):
                rc.note(w + 0.2 + i * 0.1, completion=True, good=False)
        rc.note(10.5, arrival=True)
        assert rc.pending is not None
        assert "attainment" in rc.pending

    def test_rearm_gives_exactly_one_fire_per_shift(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        fires = []
        t = 0.0
        for phase, rate in enumerate((2.0, 16.0, 16.0, 16.0)):
            for w in range(4):
                self._feed_window(rc, t, rate)
                t += 1.0
                if rc.pending is not None:
                    fires.append(rc.pending)
                    rc.rearm(t)
        # One sustained shift (2 -> 16) == one fire, even though the
        # high rate persists for three more phases.
        assert len(fires) == 1

    def test_rearm_resets_measurement(self):
        rc = RetuneController(window_ms=1.0, ratio=2.0)
        for w in range(8):
            self._feed_window(rc, float(w), 16.0)
        rc.rearm(8.0)
        assert rc.pending is None
        assert rc.rate_anchor is None
        assert rc.windows == 0
        assert rc.rate_ewma.value is None


class TestRunContextHooks:
    def _ctx(self):
        spec = get_workload("ldpc")
        params = spec.quick_params()
        pipeline = spec.build_pipeline(params)
        return RunContext(
            pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline)
        )

    def test_release_returns_reservations(self):
        ctx = self._ctx()
        ctx.expect_arrivals({"initialize": 3})
        assert ctx.total_outstanding == 3
        ctx.release_arrivals({"initialize": 2})
        assert ctx.total_outstanding == 1
        assert ctx.outstanding["initialize"] == 1

    def test_release_rejects_unknown_stage(self):
        ctx = self._ctx()
        with pytest.raises(ConfigurationError, match="unknown stage"):
            ctx.release_arrivals({"nope": 1})

    def test_release_rejects_negative(self):
        ctx = self._ctx()
        with pytest.raises(ConfigurationError, match=">= 0"):
            ctx.release_arrivals({"initialize": -1})

    def test_release_rejects_overdraw(self):
        ctx = self._ctx()
        ctx.expect_arrivals({"initialize": 1})
        with pytest.raises(ExecutionError, match="more arrivals"):
            ctx.release_arrivals({"initialize": 2})


def _config(**overrides):
    base = dict(
        workload="ldpc",
        arrival_spec="poisson:0.8",
        duration_ms=10.0,
        slo_ms=20.0,
        seed=42,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestAdaptiveServe:
    def test_static_config_is_not_adaptive(self):
        assert not _config().is_adaptive
        assert _config(admission="drop-tail:8").is_adaptive
        assert _config(max_batch=4).is_adaptive
        assert _config(retune=1.5).is_adaptive

    def test_shed_accounting_is_exact(self):
        report = serve_workload(
            _config(arrival_spec="poisson:3.0", slo_ms=6.0,
                    duration_ms=20.0, admission="slo-ewma:1.0")
        )
        assert report.shed > 0
        assert report.requests == report.completed + report.shed
        assert report.slo.shed == report.shed
        assert report.sheds.total == report.shed
        assert report.latency.count == report.completed
        payload = report.payload()
        assert payload["shed"] == report.shed
        assert payload["slo"]["shed"] == report.shed
        assert 0.0 <= payload["slo"]["offered_attainment"] <= 1.0

    def test_drop_tail_sheds_under_overload(self):
        report = serve_workload(
            _config(arrival_spec="poisson:4.0", admission="drop-tail:2")
        )
        assert report.shed > 0
        assert report.requests == report.completed + report.shed

    def test_sheds_cost_nothing_downstream(self):
        observer = Observer()
        report = serve_workload(
            _config(arrival_spec="poisson:3.0", slo_ms=6.0,
                    duration_ms=20.0, admission="slo-ewma:1.0"),
            observer=observer,
        )
        kinds = {event.kind for event in observer.events}
        assert "req_shed" in kinds
        sheds = [e for e in observer.events if e.kind == "req_shed"]
        assert len(sheds) == report.shed
        shed_rids = {e.rid for e in sheds}
        span_rids = {
            e.rid for e in observer.events if e.kind == "req_span"
        }
        assert not (shed_rids & span_rids)

    def test_adaptive_repeat_runs_byte_identical(self):
        cfg = _config(admission="slo-ewma", max_batch=8, slo_ms=6.0,
                      arrival_spec="poisson:2.0")
        assert _payload_json(serve_workload(cfg)) == _payload_json(
            serve_workload(cfg)
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_adaptive_workers_byte_identical(self, workers):
        configs = [
            _config(workload=name, admission="slo-ewma", max_batch=8,
                    slo_ms=6.0, arrival_spec="poisson:1.5")
            for name in ("ldpc", "reyes", "face_detection")
        ]
        reports = run_serve_cells(configs, workers=workers)
        key = "|".join(_payload_json(r) for r in reports)
        if not hasattr(type(self), "_workers_baseline"):
            type(self)._workers_baseline = key
        assert key == type(self)._workers_baseline
        merged = merge_serve_reports(reports)
        assert merged.requests == sum(r.requests for r in reports)

    def test_dynamic_batching_run_completes_and_is_deterministic(self):
        cfg = _config(max_batch=1, arrival_spec="poisson:2.0")
        observer = Observer()
        report = serve_workload(cfg, observer=observer)
        assert report.completed == report.requests > 0
        pops = [e for e in observer.events if e.kind == "queue_pop"]
        assert pops and all(pop.count == 1 for pop in pops)
        assert _payload_json(report) == _payload_json(serve_workload(cfg))

    def test_governor_clamps_engine_pops_and_drains(self):
        spec = get_workload("ldpc")
        pipeline = spec.build_pipeline(spec.quick_params())
        ctx = RunContext(
            pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline)
        )
        stage = "c2v"
        for value in range(6):
            ctx.queue_set.push(stage, value, None)

        # Governed KBK drain: the oversized wave is split to the clamp.
        ctx.batch_governor = lambda s, cap: 2
        first = ctx.drain_stage(stage)
        assert len(first) == 2
        # Without a governor the drain takes the whole backlog.
        ctx.batch_governor = None
        rest = ctx.drain_stage(stage)
        assert len(rest) == 4

    def test_queueset_drain_respects_max_items(self):
        spec = get_workload("ldpc")
        pipeline = spec.build_pipeline(spec.quick_params())
        ctx = RunContext(
            pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline)
        )
        qs = ctx.queue_set
        for value in range(5):
            qs.push("v2c", value, None)
        assert len(qs.drain("v2c", 3)) == 3
        assert qs.backlog("v2c") == 2
        assert len(qs.drain("v2c")) == 2
        assert qs.backlog("v2c") == 0


class TestRetuneServe:
    def test_retune_fires_exactly_once_per_shift(self, shift_trace):
        trace = shift_trace
        cfg = _config(
            arrival_spec=f"trace:{trace}",
            duration_ms=16.0,
            slo_ms=10.0,
            window_ms=2.0,
            retune=2.0,
            retune_budget=8,
        )
        report = serve_workload(cfg)
        assert len(report.retunes) == 1
        swap = report.retunes[0]
        assert "arrival-rate" in swap["reason"]
        assert swap["old_plan"] and swap["new_plan"]
        assert report.completed == report.requests
        assert report.payload()["retunes"] == report.retunes

    def test_retune_emits_obs_event(self, shift_trace):
        trace = shift_trace
        cfg = _config(
            arrival_spec=f"trace:{trace}",
            duration_ms=16.0,
            slo_ms=10.0,
            window_ms=2.0,
            retune=2.0,
            retune_budget=8,
        )
        observer = Observer()
        report = serve_workload(cfg, observer=observer)
        swaps = [e for e in observer.events if e.kind == "serve_retune"]
        assert len(swaps) == len(report.retunes) == 1
        assert swaps[0].reason == report.retunes[0]["reason"]
        assert swaps[0].new_plan == report.retunes[0]["new_plan"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_swapped_plan_byte_identical_across_workers(
        self, shift_trace, workers
    ):
        trace = shift_trace
        configs = [
            _config(
                arrival_spec=f"trace:{trace}",
                duration_ms=16.0,
                slo_ms=10.0,
                window_ms=2.0,
                retune=2.0,
                retune_budget=8,
                seed=seed,
            )
            for seed in (0, 1, 2, 3)
        ]
        reports = run_serve_cells(configs, workers=workers)
        key = "|".join(_payload_json(r) for r in reports)
        if not hasattr(type(self), "_plan_baseline"):
            type(self)._plan_baseline = key
        assert key == type(self)._plan_baseline
        for report in reports:
            assert len(report.retunes) == 1

    def test_midrun_retune_goodput_beats_static(self, shift_trace):
        trace = shift_trace
        base = dict(
            arrival_spec=f"trace:{trace}",
            duration_ms=16.0,
            slo_ms=10.0,
            window_ms=2.0,
        )
        static = serve_workload(_config(**base))
        retuned = serve_workload(
            _config(**base, retune=2.0, retune_budget=8)
        )
        assert len(retuned.retunes) == 1
        assert retuned.goodput_per_ms >= static.goodput_per_ms

    def test_steady_load_never_retunes(self):
        report = serve_workload(
            _config(arrival_spec="poisson:1.0", retune=3.0,
                    retune_budget=8, window_ms=2.0)
        )
        assert report.retunes == []
        assert report.completed == report.requests
