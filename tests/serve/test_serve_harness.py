"""Serving harness: sharded cells, exact merges, worker byte-identity."""

import json

import pytest

from repro.serve import (
    ServeConfig,
    merge_serve_reports,
    plan_serve,
    run_serve_cells,
    serve_workload,
)
from repro.serve.report import MERGE_CHUNK


def _payloads(reports):
    return [json.dumps(r.payload(), sort_keys=True) for r in reports]


class TestShardedServing:
    def test_plan_order_is_stable(self):
        plan = plan_serve(
            ["reyes", "ldpc"], "poisson:0.5", 5.0, 5.0, seed=1
        )
        assert [c.workload for c in plan] == ["reyes", "ldpc"]
        assert all(isinstance(c, ServeConfig) for c in plan)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_byte_identical(self, workers):
        plan = plan_serve(
            ["ldpc", "reyes", "face_detection"],
            "poisson:0.5", 6.0, 5.0, seed=9,
        )
        serial = run_serve_cells(plan, workers=1)
        parallel = run_serve_cells(plan, workers=workers)
        assert _payloads(serial) == _payloads(parallel)
        merged_serial = merge_serve_reports(serial)
        merged_parallel = merge_serve_reports(parallel)
        assert json.dumps(
            merged_serial.payload(), sort_keys=True
        ) == json.dumps(merged_parallel.payload(), sort_keys=True)

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            run_serve_cells([], workers=0)


class TestMergeServeReports:
    def test_merge_preserves_totals(self):
        plan = plan_serve(["ldpc", "reyes"], "poisson:0.5", 5.0, 5.0)
        reports = [serve_workload(config) for config in plan]
        merged = merge_serve_reports(reports)
        assert merged.requests == sum(r.requests for r in reports)
        assert merged.completed == sum(r.completed for r in reports)
        assert merged.latency.count == sum(
            r.latency.count for r in reports
        )
        assert merged.slo.good == sum(r.slo.good for r in reports)
        assert merged.workload == "mixed"
        assert merged.duration_ms == sum(r.duration_ms for r in reports)

    def test_chunked_tree_matches_flat_merge(self):
        # More reports than the fan-in: exercises the chunked reduction.
        base = serve_workload(
            ServeConfig(
                workload="ldpc", arrival_spec="poisson:0.5",
                duration_ms=4.0, slo_ms=5.0,
            )
        )
        count = MERGE_CHUNK * 2 + 3
        reports = [base for _ in range(count)]
        merged = merge_serve_reports(reports)
        assert merged.requests == base.requests * count
        assert merged.latency.count == base.latency.count * count
        # Percentiles of N identical merged copies equal the single's.
        for p in (50, 99, 99.9):
            assert merged.latency.percentile(p) == base.latency.percentile(p)

    def test_merge_carries_slo_rollup(self):
        # The merged report must expose the cross-cell SLO view: the
        # attainment over every completed request and goodput over the
        # summed cell durations (this is what BENCH_serve.json's
        # ``merged`` leaf records).
        plan = plan_serve(
            ["ldpc", "reyes"], "poisson:0.5", 5.0, 5.0, seed=3
        )
        reports = [serve_workload(config) for config in plan]
        merged = merge_serve_reports(reports)
        good = sum(r.slo.good for r in reports)
        completed = sum(r.slo.completed for r in reports)
        assert merged.slo.slo_ms == reports[0].slo.slo_ms
        assert merged.slo.attainment == pytest.approx(good / completed)
        assert merged.goodput_per_ms == pytest.approx(
            good / sum(r.duration_ms for r in reports)
        )

    def test_merge_adopts_budget_from_empty_cell(self):
        # A cell that completed nothing still carries a real budget; a
        # default-constructed accumulator must adopt it so later merges
        # judge attainment against the right SLO.
        from repro.serve.report import ServeReport
        from repro.serve.slo import SLOTracker

        empty = ServeReport(duration_ms=5.0, slo=SLOTracker(slo_ms=7.5))
        acc = ServeReport()
        acc.merge(empty)
        assert acc.slo.slo_ms == 7.5

    def test_merge_empty(self):
        merged = merge_serve_reports([])
        assert merged.requests == 0
        assert merged.latency.count == 0
