"""The open-loop driver: determinism, request accounting, all models."""

import json

import pytest

from repro.core.errors import ConfigurationError, ExecutionError
from repro.core.executor import FunctionalExecutor
from repro.obs import Observer
from repro.obs.spans import RequestItem
from repro.serve import (
    SERVE_MODELS,
    RequestTaggingExecutor,
    ServeConfig,
    retune_serve_plan,
    serve_workload,
)
from repro.workloads.registry import get_workload


def _config(**overrides):
    base = dict(
        workload="ldpc",
        arrival_spec="poisson:0.5",
        duration_ms=10.0,
        slo_ms=5.0,
        seed=3,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestServeDriver:
    def test_repeat_runs_byte_identical(self):
        first = serve_workload(_config())
        second = serve_workload(_config())
        assert json.dumps(first.payload(), sort_keys=True) == json.dumps(
            second.payload(), sort_keys=True
        )

    def test_every_request_completes(self):
        report = serve_workload(_config(arrival_spec="poisson:1.0"))
        assert report.requests > 0
        assert report.completed == report.requests
        assert report.latency.count == report.completed
        assert report.arrivals.total == report.requests
        assert report.completions.total == report.completed

    def test_per_stage_breakdown_covers_pipeline(self):
        report = serve_workload(_config())
        stages = set(
            get_workload("ldpc").build_pipeline(
                get_workload("ldpc").quick_params()
            ).stage_names
        )
        assert set(report.stage_wait) == stages
        assert set(report.stage_service) == stages
        for stage in stages:
            assert report.stage_service[stage].count >= report.completed

    def test_latency_includes_queue_and_service(self):
        report = serve_workload(_config())
        # End-to-end latency can't be below the largest single visit.
        assert report.latency.max > 0
        assert report.elapsed_ms > 0

    def test_slo_accounting_consistent(self):
        report = serve_workload(_config(slo_ms=0.001))
        assert report.slo.violations == report.completed
        assert report.slo.first_violation_ms is not None
        tight = report.slo.attainment
        loose = serve_workload(_config(slo_ms=1e9)).slo.attainment
        assert tight == 0.0 and loose == 1.0

    @pytest.mark.parametrize("model", SERVE_MODELS)
    def test_all_serve_models_drain(self, model):
        report = serve_workload(
            _config(model=model, duration_ms=5.0, arrival_spec="poisson:0.4")
        )
        assert report.completed == report.requests > 0

    def test_seed_changes_schedule(self):
        a = serve_workload(_config(seed=1))
        b = serve_workload(_config(seed=2))
        assert a.arrivals.to_dict() != b.arrivals.to_dict()

    def test_observer_captures_request_events(self):
        observer = Observer()
        report = serve_workload(_config(), observer=observer)
        kinds = {event.kind for event in observer.events}
        assert {"req_arrive", "req_span", "req_done"} <= kinds
        done = [e for e in observer.events if e.kind == "req_done"]
        assert len(done) == report.completed

    def test_rejects_unservable_model(self):
        with pytest.raises(ConfigurationError, match="open-loop"):
            _config(model="rtc")

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError, match="duration"):
            _config(duration_ms=0.0)
        with pytest.raises(ConfigurationError, match="slo"):
            _config(slo_ms=-1.0)


class TestRequestTaggingExecutor:
    def test_children_inherit_request_id(self):
        spec = get_workload("ldpc")
        params = spec.quick_params()
        pipeline = spec.build_pipeline(params)
        executor = RequestTaggingExecutor(FunctionalExecutor(pipeline))
        stage, payloads = next(iter(spec.initial_items(params).items()))
        result = executor.run_task(stage, RequestItem(42, payloads[0]))
        assert result.children
        for _target, child in result.children:
            assert isinstance(child, RequestItem)
            assert child.rid == 42

    def test_wrap_initial_forbidden(self):
        spec = get_workload("ldpc")
        pipeline = spec.build_pipeline(spec.quick_params())
        executor = RequestTaggingExecutor(FunctionalExecutor(pipeline))
        with pytest.raises(ExecutionError, match="deliver_arrival"):
            executor.wrap_initial("initialize", object())


class TestRetuneServePlan:
    def test_returns_raced_winner_with_adaptation_off(self):
        from repro.core.tuner.offline import TunerOptions

        plan, report = retune_serve_plan(
            _config(), options=TunerOptions(max_configs=12)
        )
        assert plan.online_adaptation is False
        assert plan.groups == report.best_config.groups
        assert report.num_evaluated > 0
        assert report.best_time_ms > 0

    def test_retune_is_deterministic(self):
        from repro.core.tuner.offline import TunerOptions

        options = TunerOptions(max_configs=12)
        first, _ = retune_serve_plan(_config(), options=options)
        second, _ = retune_serve_plan(_config(), options=options)
        assert first == second
