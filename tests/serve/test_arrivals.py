"""Arrival processes: determinism, bounds, and spec-string validation."""

import json
import random

import pytest

from repro.serve.arrivals import (
    ArrivalSpecError,
    BurstArrivals,
    PoissonArrivals,
    TraceArrivals,
    load_arrival_trace,
    parse_arrival_spec,
)


class TestProcesses:
    def test_poisson_deterministic_and_bounded(self):
        proc = PoissonArrivals(rate_per_ms=2.0)
        a = proc.times(50.0, random.Random(7))
        b = proc.times(50.0, random.Random(7))
        assert a == b
        assert a == sorted(a)
        assert all(0.0 <= t < 50.0 for t in a)
        # ~100 expected arrivals; a seeded draw is pinned, just sanity-band.
        assert 50 <= len(a) <= 160

    def test_poisson_rate_scales_counts(self):
        slow = PoissonArrivals(0.2).times(100.0, random.Random(1))
        fast = PoissonArrivals(2.0).times(100.0, random.Random(1))
        assert len(fast) > len(slow) * 3

    def test_burst_phases_alternate_load(self):
        proc = BurstArrivals(base_per_ms=0.1, peak_per_ms=5.0, dwell_ms=10.0)
        times = proc.times(40.0, random.Random(3))
        assert times == sorted(times)
        base = [t for t in times if (int(t // 10.0) % 2) == 0]
        peak = [t for t in times if (int(t // 10.0) % 2) == 1]
        assert len(peak) > len(base) * 3

    def test_trace_filters_to_horizon(self):
        proc = TraceArrivals(path="x", offsets=(5.0, 1.0, 12.0, 0.0))
        assert proc.times(10.0, random.Random(0)) == [0.0, 1.0, 5.0]

    def test_describe_round_trips(self):
        for spec in ("poisson:0.5", "burst:0.2,2,5"):
            assert parse_arrival_spec(spec).describe() == spec


class TestTraceFiles:
    def test_json_array_file(self, tmp_path):
        path = tmp_path / "arrivals.json"
        path.write_text(json.dumps([0.25, 1.5, 3.0]))
        proc = load_arrival_trace(str(path))
        assert proc.offsets == (0.25, 1.5, 3.0)

    def test_line_oriented_file(self, tmp_path):
        path = tmp_path / "arrivals.txt"
        path.write_text("0.5\n2.0\n7\n")
        proc = load_arrival_trace(str(path))
        assert proc.offsets == (0.5, 2.0, 7.0)

    def test_equal_offsets_allowed(self, tmp_path):
        path = tmp_path / "arrivals.txt"
        path.write_text("1.0\n1.0\n2.5\n")
        proc = load_arrival_trace(str(path))
        assert proc.offsets == (1.0, 1.0, 2.5)

    @pytest.mark.parametrize(
        "content,fragment",
        [
            ("", "empty"),
            ("[1, oops]", "not valid JSON"),
            ("abc", "non-numeric"),
            ("-1.0", "negative"),
            ("[1.0, NaN]", "non-finite"),
            ("[1.0, Infinity]", "non-finite"),
            ("nan", "non-finite"),
            ("inf", "non-finite"),
            ("[3.0, 1.5]", "non-decreasing"),
            ("2.0\n0.5\n", "non-decreasing"),
        ],
    )
    def test_bad_trace_content(self, tmp_path, content, fragment):
        path = tmp_path / "bad.txt"
        path.write_text(content)
        with pytest.raises(ArrivalSpecError, match=fragment):
            load_arrival_trace(str(path))

    def test_rejection_names_position_and_value(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1.0\n4.0\n2.5\n")
        with pytest.raises(
            ArrivalSpecError, match=r"2\.5 at position 2 follows 4"
        ):
            load_arrival_trace(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArrivalSpecError, match="cannot read"):
            load_arrival_trace(str(tmp_path / "nope.txt"))


class TestSpecParsing:
    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("poisson", "must look like"),
            ("poisson:", "must look like"),
            ("poisson:zero", "must be a number"),
            ("poisson:0", "must be > 0"),
            ("poisson:-3", "must be > 0"),
            ("burst:1,2", "BASE,PEAK,DWELL"),
            ("burst:1,2,3,4", "BASE,PEAK,DWELL"),
            ("burst:0,2,3", "must be > 0"),
            ("burst:1,2,-1", "must be > 0"),
            ("uniform:5", "unknown arrival process"),
        ],
    )
    def test_rejects_malformed_specs(self, spec, fragment):
        with pytest.raises(ArrivalSpecError, match=fragment):
            parse_arrival_spec(spec)

    def test_parses_valid_specs(self):
        assert parse_arrival_spec("poisson:1.5") == PoissonArrivals(1.5)
        assert parse_arrival_spec("burst:0.5,4,10") == BurstArrivals(
            0.5, 4.0, 10.0
        )
