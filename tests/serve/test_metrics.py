"""Log-bucket histograms, window series and SLO trackers: exact merge."""

import json
import random

import pytest

from repro.obs.hist import (
    SUBBUCKETS_PER_OCTAVE,
    LogBucketHistogram,
    WindowSeries,
    _bucket_edges,
    _bucket_key,
)
from repro.serve.slo import MIXED_SLO_MS, SLOTracker


class TestBucketing:
    def test_edges_cover_samples(self):
        for units in (1, 2, 3, 7, 8, 9, 100, 1023, 1024, 10**7):
            lo, hi = _bucket_edges(_bucket_key(units))
            assert lo <= units < hi

    def test_bucket_width_bounded(self):
        # Sub-octave buckets: width <= 1/SUBBUCKETS_PER_OCTAVE of the base.
        for units in (8, 100, 5000, 10**6):
            lo, hi = _bucket_edges(_bucket_key(units))
            assert (hi - lo) / lo <= 1.0 / SUBBUCKETS_PER_OCTAVE + 1e-12

    def test_zero_bucket(self):
        assert _bucket_key(0) == -1
        assert _bucket_edges(-1) == (0.0, 1.0)


class TestLogBucketHistogram:
    def test_percentiles_clamped_to_observed_range(self):
        hist = LogBucketHistogram()
        for value in (1.0, 2.0, 3.0):
            hist.add(value)
        assert hist.min == 1.0 and hist.max == 3.0
        assert 1.0 <= hist.percentile(0) <= hist.percentile(100) <= 3.0
        assert hist.percentile(100) == 3.0

    def test_percentile_tracks_distribution(self):
        hist = LogBucketHistogram()
        rng = random.Random(5)
        values = [rng.uniform(0.5, 20.0) for _ in range(5000)]
        for value in values:
            hist.add(value)
        values.sort()
        exact_p99 = values[int(0.99 * len(values))]
        # Sub-octave buckets are <= ~9% wide: p99 lands within 10%.
        assert abs(hist.percentile(99) - exact_p99) / exact_p99 < 0.10

    @pytest.mark.parametrize("splits", [2, 3, 7, 16])
    def test_merged_percentiles_identical_to_single(self, splits):
        rng = random.Random(11)
        values = [rng.expovariate(0.3) for _ in range(4000)]
        single = LogBucketHistogram()
        for value in values:
            single.add(value)
        parts = [LogBucketHistogram() for _ in range(splits)]
        for index, value in enumerate(values):
            parts[index % splits].add(value)
        merged = LogBucketHistogram()
        for part in parts:
            merged.merge(part)
        assert json.dumps(merged.to_dict(), sort_keys=True) == json.dumps(
            single.to_dict(), sort_keys=True
        )

    def test_round_trip(self):
        hist = LogBucketHistogram()
        for value in (0.0001, 0.5, 4.2, 900.0):
            hist.add(value)
        clone = LogBucketHistogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_empty(self):
        hist = LogBucketHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0


class TestWindowSeries:
    def test_counts_and_rates(self):
        series = WindowSeries(window_ms=2.0)
        for t in (0.0, 0.5, 1.9, 2.0, 5.9):
            series.add(t)
        assert series.counts == {0: 3, 1: 1, 2: 1}
        assert series.total == 5
        assert series.peak_rate == 1.5
        assert series.mean_rate(10.0) == 0.5

    def test_merge_requires_same_window(self):
        a = WindowSeries(window_ms=1.0)
        b = WindowSeries(window_ms=2.0)
        b.add(1.0)
        with pytest.raises(ValueError, match="window"):
            a.merge(b)

    def test_merge_sums_counts(self):
        a = WindowSeries()
        b = WindowSeries()
        a.add(0.5)
        b.add(0.7)
        b.add(3.1)
        a.merge(b)
        assert a.counts == {0: 2, 3: 1}


class TestSLOTracker:
    def test_classification_and_first_violation(self):
        slo = SLOTracker(slo_ms=5.0)
        slo.observe(3.0, completed_at_ms=1.0)
        slo.observe(9.0, completed_at_ms=8.0)
        slo.observe(7.0, completed_at_ms=4.0)
        assert slo.good == 1 and slo.violations == 2
        assert slo.first_violation_ms == 4.0
        assert slo.attainment == pytest.approx(1 / 3)
        assert slo.goodput_per_ms(10.0) == pytest.approx(0.1)

    def test_merge_exact(self):
        a = SLOTracker(slo_ms=5.0)
        b = SLOTracker(slo_ms=5.0)
        a.observe(2.0, 1.0)
        b.observe(8.0, 3.0)
        b.observe(6.0, 9.0)
        a.merge(b)
        assert a.good == 1 and a.violations == 2
        assert a.first_violation_ms == 3.0

    def test_merge_mixed_budgets_poisons_slo_ms(self):
        # Mixed-budget merges are legal (per-workload SLOs roll up into
        # one fleet report): counts sum exactly, but the budget field
        # becomes the MIXED_SLO_MS sentinel because no single number
        # describes the merged cells.
        a = SLOTracker(slo_ms=5.0)
        b = SLOTracker(slo_ms=7.0)
        a.observe(2.0, 1.0)
        b.observe(1.0, 1.0)
        b.observe(9.0, 2.0)
        a.merge(b)
        assert a.slo_ms == MIXED_SLO_MS
        assert a.good == 2 and a.violations == 1
        assert a.completed == 3

    def test_merge_adopts_budget_into_empty_default(self):
        a = SLOTracker(slo_ms=0.0)
        b = SLOTracker(slo_ms=7.0)
        b.observe(1.0, 1.0)
        a.merge(b)
        assert a.slo_ms == 7.0
        assert a.good == 1

    def test_merge_mixed_is_sticky(self):
        a = SLOTracker(slo_ms=5.0)
        b = SLOTracker(slo_ms=7.0)
        a.observe(2.0, 1.0)
        b.observe(1.0, 1.0)
        a.merge(b)
        c = SLOTracker(slo_ms=5.0)
        c.observe(3.0, 1.0)
        a.merge(c)
        assert a.slo_ms == MIXED_SLO_MS
        assert a.completed == 3

    def test_shed_accounting(self):
        slo = SLOTracker(slo_ms=5.0)
        slo.observe(2.0, 1.0)
        slo.observe(9.0, 2.0)
        slo.observe_shed()
        assert slo.shed == 1
        assert slo.offered == 3
        assert slo.attainment == pytest.approx(0.5)
        assert slo.offered_attainment == pytest.approx(1 / 3)

    def test_empty_tracker(self):
        slo = SLOTracker(slo_ms=5.0)
        assert slo.attainment == 1.0
        assert slo.first_violation_ms is None
        assert slo.goodput_per_ms(0.0) == 0.0
