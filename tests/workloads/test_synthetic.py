"""Synthetic pipeline generator: determinism, purity, model agreement."""

import pytest

from repro.core.executor import FunctionalExecutor, RecordingExecutor
from repro.core.models import KBKModel, MegakernelModel, RTCModel
from repro.gpu import GPUDevice, K20C
from repro.workloads import synthetic


def run(params, model=None):
    pipeline = synthetic.build_pipeline(params)
    device = GPUDevice(K20C)
    return (model or MegakernelModel()).run(
        pipeline,
        device,
        FunctionalExecutor(pipeline),
        synthetic.initial_items(params),
    )


class TestGeneration:
    def test_uniform_builds_named_chain(self):
        params = synthetic.SyntheticParams.uniform(num_stages=4)
        pipeline = synthetic.build_pipeline(params)
        assert pipeline.stage_names == ["s0", "s1", "s2", "s3"]
        assert pipeline.structure == "linear"

    def test_recursive_spec_classified_as_recursion(self):
        params = synthetic.SyntheticParams(
            stages=(
                synthetic.SyntheticStageSpec(recursion_prob=0.3),
                synthetic.SyntheticStageSpec(),
            ),
            num_items=10,
        )
        pipeline = synthetic.build_pipeline(params)
        assert pipeline.structure == "recursion"

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ValueError):
            synthetic.build_pipeline(
                synthetic.SyntheticParams(stages=(), num_items=1)
            )


class TestDeterminismAndPurity:
    def test_repeat_runs_identical(self):
        params = synthetic.SyntheticParams.uniform(
            num_stages=3, fan_out=1.5, imbalance=0.5, num_items=50
        )
        first = run(params)
        second = run(params)
        assert first.time_ms == second.time_ms
        assert len(first.outputs) == len(second.outputs)

    def test_seed_changes_workload(self):
        base = synthetic.SyntheticParams.uniform(
            num_stages=2, fan_out=1.5, num_items=100, seed=1
        )
        other = synthetic.SyntheticParams.uniform(
            num_stages=2, fan_out=1.5, num_items=100, seed=2
        )
        assert len(run(base).outputs) != len(run(other).outputs) or (
            run(base).time_ms != run(other).time_ms
        )

    def test_models_agree_on_output_count(self):
        params = synthetic.SyntheticParams.uniform(
            num_stages=3, fan_out=2.0, num_items=30
        )
        counts = {
            name: len(run(params, model).outputs)
            for name, model in (
                ("rtc", RTCModel()),
                ("kbk", KBKModel()),
                ("megakernel", MegakernelModel()),
            )
        }
        assert len(set(counts.values())) == 1, counts

    def test_output_range_bounds_hold(self):
        params = synthetic.SyntheticParams.uniform(
            num_stages=3, fan_out=1.7, num_items=40
        )
        low, high = synthetic.expected_output_range(params)
        outputs = len(run(params).outputs)
        assert low <= outputs <= high

    def test_recursion_depth_capped(self):
        params = synthetic.SyntheticParams(
            stages=(
                synthetic.SyntheticStageSpec(recursion_prob=0.99),
            ),
            num_items=20,
            max_depth=5,
        )
        pipeline = synthetic.build_pipeline(params)
        executor = RecordingExecutor(pipeline)
        from repro.core.tuner.profiler import profile_pipeline

        profile, _trace = profile_pipeline(
            pipeline, K20C, synthetic.initial_items(params)
        )
        # At most max_depth recursions per item plus the entry task.
        assert profile.stages["s0"].tasks <= 20 * (params.max_depth + 1)


class TestCostModel:
    def test_imbalance_spreads_costs(self):
        spec = synthetic.SyntheticStageSpec(imbalance=0.8)
        params = synthetic.SyntheticParams(stages=(spec,), num_items=200)
        pipeline = synthetic.build_pipeline(params)
        stage = pipeline.stage("s0")
        costs = [
            stage.cost(item).cycles_per_thread
            for item in synthetic.initial_items(params)["s0"]
        ]
        assert max(costs) > 1.5 * min(costs)
        for cost in costs:
            assert (
                spec.mean_cycles * 0.2
                <= cost
                <= spec.mean_cycles * 1.8
            )

    def test_zero_imbalance_uniform_costs(self):
        params = synthetic.SyntheticParams.uniform(num_stages=1)
        pipeline = synthetic.build_pipeline(params)
        stage = pipeline.stage("s0")
        costs = {
            stage.cost(item).cycles_per_thread
            for item in synthetic.initial_items(params)["s0"]
        }
        assert len(costs) == 1
