"""Image-processing primitives used by Pyramid and Face Detection."""

import numpy as np
import pytest

from repro.workloads import images


class TestSyntheticImages:
    def test_deterministic(self):
        a = images.synthetic_rgb_image(3, 64, 48)
        b = images.synthetic_rgb_image(3, 64, 48)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = images.synthetic_rgb_image(3, 64, 48)
        b = images.synthetic_rgb_image(4, 64, 48)
        assert not np.array_equal(a, b)

    def test_shape_and_dtype(self):
        img = images.synthetic_rgb_image(0, 100, 80)
        assert img.shape == (80, 100, 3)
        assert img.dtype == np.uint8

    def test_plant_faces_brightens_center(self):
        canvas = np.full((64, 64), 100, dtype=np.uint8)
        out = images.plant_faces(canvas, [(16, 16, 32)])
        center = out[28:36, 28:36]
        assert center.mean() > 180
        # eye region darker than face
        assert out[16 + 10, 16 + 10] < 100 or out.min() < 60

    def test_plant_faces_out_of_bounds_raises(self):
        canvas = np.full((32, 32), 100, dtype=np.uint8)
        with pytest.raises(ValueError):
            images.plant_faces(canvas, [(20, 20, 24)])


class TestGrayscale:
    def test_preserves_shape(self):
        img = images.synthetic_rgb_image(1, 40, 30)
        gray = images.to_grayscale(img)
        assert gray.shape == (30, 40)
        assert gray.dtype == np.uint8

    def test_pure_colors(self):
        red = np.zeros((2, 2, 3), dtype=np.uint8)
        red[..., 0] = 255
        assert abs(int(images.to_grayscale(red)[0, 0]) - 76) <= 1

    def test_gray_input_passthrough(self):
        gray = np.full((4, 4), 77, dtype=np.uint8)
        np.testing.assert_array_equal(images.to_grayscale(gray), gray)


class TestHistogramEqualization:
    def test_flat_image_unchanged_value_range(self):
        flat = np.full((16, 16), 100, dtype=np.uint8)
        out = images.equalize_histogram(flat)
        assert out.shape == flat.shape
        assert len(np.unique(out)) == 1

    def test_spreads_narrow_histogram(self):
        rng = np.random.default_rng(0)
        narrow = rng.integers(100, 120, size=(64, 64)).astype(np.uint8)
        out = images.equalize_histogram(narrow)
        assert out.max() - out.min() > narrow.max() - narrow.min()

    def test_monotone_mapping(self):
        """Equalisation must preserve pixel ordering."""
        rng = np.random.default_rng(1)
        img = rng.integers(0, 256, size=(32, 32)).astype(np.uint8)
        out = images.equalize_histogram(img)
        flat_in = img.ravel()
        flat_out = out.ravel()
        order = np.argsort(flat_in, kind="stable")
        assert np.all(np.diff(flat_out[order].astype(int)) >= 0)


class TestDownsample:
    def test_halves_dimensions(self):
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        out = images.downsample2x(img)
        assert out.shape == (4, 4)

    def test_box_filter_average(self):
        img = np.array([[0, 4], [8, 12]], dtype=np.uint8)
        out = images.downsample2x(img)
        assert out[0, 0] == 6  # (0+4+8+12+2)//4

    def test_odd_dimensions_cropped(self):
        img = np.zeros((5, 7), dtype=np.uint8)
        assert images.downsample2x(img).shape == (2, 3)


class TestLBP:
    def test_codes_shape(self):
        img = np.zeros((10, 12), dtype=np.uint8)
        assert images.lbp_codes(img).shape == (8, 10)

    def test_uniform_region_gives_all_ones_code(self):
        img = np.full((8, 8), 50, dtype=np.uint8)
        codes = images.lbp_codes(img)
        assert np.all(codes == 255)  # neighbours >= centre everywhere

    def test_bright_center_pixel_gives_zero(self):
        img = np.full((5, 5), 50, dtype=np.uint8)
        img[2, 2] = 200
        assert images.lbp_codes(img)[1, 1] == 0

    def test_histogram_normalised(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(0, 256, size=(30, 30)).astype(np.uint8)
        hist = images.lbp_histogram(codes, bins=16)
        assert hist.shape == (16,)
        assert hist.sum() == pytest.approx(1.0)
