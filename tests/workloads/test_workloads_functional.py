"""Functional correctness of all six workloads at quick scale, plus
cross-model output agreement (the schedule-independence guarantee)."""

import numpy as np
import pytest

from repro.core.executor import FunctionalExecutor
from repro.core.models import HybridModel, KBKModel, MegakernelModel
from repro.gpu import GPUDevice, K20C
from repro.workloads.registry import all_workloads, get_workload

WORKLOAD_NAMES = sorted(all_workloads())


def run(spec, model, params):
    pipeline = spec.build_pipeline(params)
    device = GPUDevice(K20C)
    return model.run(
        pipeline, device, FunctionalExecutor(pipeline), spec.initial_items(params)
    )


class TestEachWorkloadQuick:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_baseline_outputs_valid(self, name):
        spec = get_workload(name)
        params = spec.quick_params()
        result = run(spec, spec.baseline_model(params), params)
        spec.check_outputs(params, result.outputs)
        assert result.time_ms > 0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_megakernel_outputs_valid(self, name):
        spec = get_workload(name)
        params = spec.quick_params()
        result = run(spec, MegakernelModel(), params)
        spec.check_outputs(params, result.outputs)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_versapipe_outputs_valid(self, name):
        spec = get_workload(name)
        params = spec.quick_params()
        pipeline = spec.build_pipeline(params)
        config = spec.versapipe_config(pipeline, K20C, params)
        result = run(spec, HybridModel(config), params)
        spec.check_outputs(params, result.outputs)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_determinism(self, name):
        spec = get_workload(name)
        params = spec.quick_params()
        first = run(spec, MegakernelModel(), params)
        second = run(spec, MegakernelModel(), params)
        assert first.time_ms == second.time_ms


class TestRegistryMetadata:
    def test_six_workloads_registered(self):
        assert len(WORKLOAD_NAMES) == 6

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_paper_numbers_sane(self, name):
        spec = get_workload(name)
        paper = spec.paper
        # Table 2 ordering: VersaPipe fastest, baseline slowest.
        assert paper.versapipe_ms <= paper.megakernel_ms <= paper.baseline_ms
        assert paper.item_bytes > 0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_item_bytes_match_table2(self, name):
        spec = get_workload(name)
        params = spec.quick_params()
        pipeline = spec.build_pipeline(params)
        bytes_declared = {
            pipeline.stage(s).item_bytes for s in pipeline.stage_names
        }
        assert spec.paper.item_bytes in bytes_declared

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("tetris")


class TestPyramidFunctional:
    def test_levels_match_reference_exactly(self):
        from repro.workloads import pyramid

        params = pyramid.PyramidParams(num_images=2, width=128, height=96)
        spec = get_workload("pyramid")
        result = run(spec, MegakernelModel(), params)
        spec.check_outputs(params, result.outputs)
        by_level = {
            (o.image_id, o.level): o.pixels for o in result.outputs
        }
        for image_id in range(2):
            ref = pyramid.reference_pyramid(params, image_id)
            for level, expected in enumerate(ref):
                np.testing.assert_array_equal(
                    by_level[(image_id, level)], expected
                )


class TestCFDFunctional:
    def test_matches_host_reference_bitwise(self):
        from repro.workloads import cfd

        params = cfd.CFDParams(
            num_chunks=2, chunk_cells=128, outer_iterations=4
        )
        spec = get_workload("cfd")
        result = run(spec, MegakernelModel(), params)
        by_id = {s.chunk_id: s for s in result.outputs}
        for chunk_id in range(2):
            ref = cfd.reference_solve(params, chunk_id)
            np.testing.assert_allclose(
                by_id[chunk_id].density, ref.density, rtol=0
            )

    def test_mass_conservation(self):
        from repro.workloads import cfd

        params = cfd.CFDParams(
            num_chunks=3, chunk_cells=256, outer_iterations=10
        )
        spec = get_workload("cfd")
        result = run(spec, KBKModel(), params)
        for state in result.outputs:
            initial = cfd.initial_chunk(params, state.chunk_id)
            assert state.total_mass() == pytest.approx(
                initial.total_mass(), rel=1e-9
            )

    def test_solution_evolves(self):
        from repro.workloads import cfd

        params = cfd.CFDParams(
            num_chunks=1, chunk_cells=128, outer_iterations=5
        )
        final = cfd.reference_solve(params, 0)
        initial = cfd.initial_chunk(params, 0)
        assert not np.allclose(final.density, initial.density)


class TestLDPCFunctional:
    def test_decodes_at_good_snr(self):
        from repro.workloads import ldpc

        params = ldpc.LDPCParams(
            n_bits=256, num_frames=10, iterations=15, snr_db=4.0
        )
        spec = get_workload("ldpc")
        result = run(spec, MegakernelModel(), params)
        clean = sum(1 for f in result.outputs if not f.bits.any())
        assert clean == 10

    def test_fails_at_terrible_snr(self):
        from repro.workloads import ldpc

        params = ldpc.LDPCParams(
            n_bits=256, num_frames=10, iterations=10, snr_db=-6.0
        )
        pipeline = get_workload("ldpc").build_pipeline(params)
        device = GPUDevice(K20C)
        result = MegakernelModel().run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            get_workload("ldpc").initial_items(params),
        )
        dirty = sum(1 for f in result.outputs if f.bits.any())
        assert dirty > 0

    def test_code_is_regular(self):
        from repro.workloads import ldpc

        params = ldpc.LDPCParams(n_bits=256)
        code = ldpc.build_code(params)
        # Column degrees all equal dv.
        degrees = np.bincount(
            code.check_to_var.ravel(), minlength=params.n_bits
        )
        assert np.all(degrees == params.var_degree)
        # No duplicate edges within a check.
        for row in code.check_to_var:
            assert len(set(row)) == params.check_degree


class TestReyesFunctional:
    def test_all_leaves_below_threshold(self):
        from repro.workloads import reyes

        params = reyes.WORKLOAD.quick_params()
        spec = get_workload("reyes")
        result = run(spec, MegakernelModel(), params)
        spec.check_outputs(params, result.outputs)

    def test_subdivision_preserves_surface(self):
        """Splitting a patch then evaluating equals evaluating the patch."""
        from repro.workloads import reyes

        params = reyes.WORKLOAD.quick_params()
        patch = reyes.base_patches(params)[0]
        left, right = reyes._decasteljau_split(patch.control, 0)
        whole = reyes.evaluate_patch(patch.control, 8)
        # The left half at parameter t corresponds to the whole at t/2, so
        # every second u-sample of the half matches the whole's first half.
        left_eval = reyes.evaluate_patch(left, 8)
        np.testing.assert_allclose(left_eval[::2], whole[:5], atol=1e-9)
        right_eval = reyes.evaluate_patch(right, 8)
        np.testing.assert_allclose(right_eval[::2], whole[4:], atol=1e-9)


class TestRasterizationFunctional:
    def test_composite_framebuffer(self):
        from repro.workloads import rasterization as ras

        params = ras.RasterParams(width=128, height=96, num_cubes=5)
        spec = get_workload("rasterization")
        result = run(spec, KBKModel(), params)
        depth, color = ras.composite(params, result.outputs)
        covered = np.isfinite(depth).sum()
        assert covered > 100
        assert color[np.isfinite(depth)].max() > 0

    def test_composite_is_order_independent(self):
        from repro.workloads import rasterization as ras

        params = ras.RasterParams(width=96, height=64, num_cubes=4)
        spec = get_workload("rasterization")
        a = run(spec, KBKModel(), params)
        b = run(spec, MegakernelModel(), params)
        depth_a, _ = ras.composite(params, a.outputs)
        depth_b, _ = ras.composite(params, b.outputs)
        np.testing.assert_array_equal(
            np.nan_to_num(depth_a, posinf=-1),
            np.nan_to_num(depth_b, posinf=-1),
        )
