"""Workload cost-model sanity: costs scale with the data, kernel resource
declarations match the paper (Section 8.3), serial floors behave."""

import numpy as np
import pytest

from repro.workloads import (
    cfd,
    face_detection as fd,
    ldpc,
    pyramid,
    rasterization as ras,
    reyes,
)


class TestPyramidCosts:
    def test_histeq_has_serial_floor(self):
        stage = pyramid.HistEqStage()
        big = np.zeros((720, 1280), dtype=np.uint8)
        cost = stage.cost(pyramid._ImageItem(0, 0, big))
        assert cost.min_cycles > cost.cycles_per_thread

    def test_costs_scale_with_pixels(self):
        stage = pyramid.GrayscaleStage()
        small = pyramid._ImageItem(0, 0, np.zeros((90, 160, 3), np.uint8))
        big = pyramid._ImageItem(0, 0, np.zeros((720, 1280, 3), np.uint8))
        ratio = (
            stage.cost(big).cycles_per_thread
            / stage.cost(small).cycles_per_thread
        )
        assert ratio == pytest.approx(64.0)

    def test_resize_cost_shrinks_per_level(self):
        params = pyramid.PyramidParams()
        stage = pyramid.ResizeStage(params.min_height)
        level0 = pyramid._ImageItem(0, 0, np.zeros((720, 1280), np.uint8))
        level1 = pyramid._ImageItem(0, 1, np.zeros((360, 640), np.uint8))
        assert (
            stage.cost(level1).cycles_per_thread
            < stage.cost(level0).cycles_per_thread
        )

    def test_expected_levels(self):
        assert pyramid.PyramidParams(height=720, min_height=24).expected_levels() == 4


class TestFaceDetectionCosts:
    def test_scanning_cost_scales_with_windows(self):
        stage = fd.FDScanning()
        codes = np.zeros((718, 1278), dtype=np.uint8)
        pixels = np.zeros((720, 1280), dtype=np.uint8)
        one_row = fd._BandItem(0, 0, 0, 1, codes, pixels)
        four_rows = fd._BandItem(0, 0, 0, 4, codes, pixels)
        assert (
            stage.cost(four_rows).cycles_per_thread
            > 3 * stage.cost(one_row).cycles_per_thread
        )

    def test_scanning_variance_is_bounded(self):
        stage = fd.FDScanning()
        codes = np.zeros((718, 1278), dtype=np.uint8)
        pixels = np.zeros((720, 1280), dtype=np.uint8)
        costs = [
            stage.cost(fd._BandItem(0, 0, row, 4, codes, pixels)).cycles_per_thread
            for row in range(0, 80, 4)
        ]
        assert max(costs) <= 2.0 * min(costs)

    def test_face_positions_deterministic_and_aligned(self):
        params = fd.FaceDetectionParams()
        first = params.face_positions(3)
        second = params.face_positions(3)
        assert first == second
        for x, y, size in first:
            scale = size // fd.WINDOW
            assert x % (fd.STRIDE * scale) == 0
            assert y % (fd.STRIDE * scale) == 0


class TestReyesCosts:
    def test_item_bytes_follow_compact_flag(self):
        assert reyes.ReyesParams().item_bytes == 272
        assert reyes.ReyesParams(compact_items=True).item_bytes == 48
        pipe = reyes.build_pipeline(reyes.ReyesParams(compact_items=True))
        assert all(
            pipe.stage(s).item_bytes == 48 for s in pipe.stage_names
        )

    def test_shade_cost_grows_with_screen_bound(self):
        params = reyes.ReyesParams()
        stage = reyes.ShadeStage(params)
        pts = np.zeros((17, 17, 3))
        small = reyes._GridItem("p", pts, screen_bound=8.0)
        large = reyes._GridItem("p", pts, screen_bound=200.0)
        assert (
            stage.cost(large).cycles_per_thread
            > stage.cost(small).cycles_per_thread
        )

    def test_megakernel_register_override(self):
        pipe = reyes.build_pipeline(reyes.ReyesParams())
        assert pipe.fused_registers == 255


class TestCFDCosts:
    def test_costs_scale_with_cells(self):
        stage = cfd.FluxStage()
        small = cfd._CFDItem(cfd.initial_chunk(cfd.CFDParams(chunk_cells=128), 0), 0, 1)
        big = cfd._CFDItem(cfd.initial_chunk(cfd.CFDParams(chunk_cells=1024), 0), 0, 1)
        assert stage.cost(big).cycles_per_thread == pytest.approx(
            8 * stage.cost(small).cycles_per_thread
        )

    def test_flux_is_heaviest_stage(self):
        params = cfd.CFDParams(chunk_cells=256)
        item = cfd._CFDItem(cfd.initial_chunk(params, 0), 0, 1)
        flux = cfd.FluxStage().cost(item).cycles_per_thread
        sf = cfd.StepFactorStage().cost(item).cycles_per_thread
        ts = cfd.TimeStepStage(params).cost(item).cycles_per_thread
        assert flux > sf > ts

    def test_requires_global_sync_marks_rtc_inapplicable(self):
        from repro.core.models import RTCModel
        from repro.core import ModelNotApplicableError

        pipe = cfd.build_pipeline(cfd.CFDParams())
        with pytest.raises(ModelNotApplicableError):
            RTCModel().check_applicable(pipe)


class TestLDPCCosts:
    def test_costs_charge_modelled_frame_size(self):
        params = ldpc.LDPCParams(n_bits=128, modelled_bits=64800)
        code = ldpc.build_code(params)
        stage = ldpc.C2VStage(params, code)
        frame = ldpc._Frame(
            0,
            np.zeros(128),
            np.zeros(code.check_to_var.shape),
            np.zeros(code.check_to_var.shape),
            0,
        )
        expected = params.modelled_edges * ldpc.C2V_CYCLES_PER_EDGE / 256
        assert stage.cost(frame).cycles_per_thread == pytest.approx(expected)

    def test_kbk_wave_count_formula(self):
        params = ldpc.LDPCParams(num_frames=5, iterations=7)
        # init + iterations x (c2v + v2c) + probvar waves.
        from repro.core.executor import FunctionalExecutor
        from repro.core.models import KBKModel
        from repro.gpu import GPUDevice, K20C

        quick = ldpc.LDPCParams(
            n_bits=128, num_frames=5, iterations=7, snr_db=5.0
        )
        pipe = ldpc.build_pipeline(quick)
        device = GPUDevice(K20C)
        result = KBKModel().run(
            pipe, device, FunctionalExecutor(pipe), ldpc.initial_items(quick)
        )
        assert result.extras["waves"] == 1 + 2 * quick.iterations + 1


class TestRasterCosts:
    def test_band_cost_bounded_by_band_rows(self):
        params = ras.RasterParams()
        stage = ras.InterpolateStage(params)
        screen = np.array([[0.0, 0.0], [500.0, 0.0], [0.0, 500.0]])
        depth = np.array([5.0, 5.0, 5.0])
        full = ras._TriangleItem(0, 0, screen, depth, y0=0, y1=10**9)
        band = ras._TriangleItem(0, 0, screen, depth, y0=0, y1=63)
        assert (
            stage.cost(band).cycles_per_thread
            < stage.cost(full).cycles_per_thread
        )

    def test_clip_culls_backfaces(self):
        params = ras.RasterParams(num_cubes=1)
        from repro.core.executor import FunctionalExecutor

        pipe = ras.build_pipeline(params)
        executor = FunctionalExecutor(pipe)
        obj = ras.scene_objects(params)[0]
        result = executor.run_task("clip", obj)
        # A closed cube: at most half its 12 faces are front-facing.
        emitted_triangles = {
            child.triangle_id // 1000 for _stage, child in result.children
        }
        assert 1 <= len(emitted_triangles) <= 6
