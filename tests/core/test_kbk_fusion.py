"""KBK stage fusion (the paper's mixed KBK+RTC baseline mechanism)."""

import pytest

from repro.core import FunctionalExecutor
from repro.core.models import KBKModel
from repro.gpu import GPUDevice, K20C

from .conftest import toy_expected, toy_pipeline


def run(model, n=40):
    pipeline = toy_pipeline()
    device = GPUDevice(K20C)
    return model.run(
        pipeline,
        device,
        FunctionalExecutor(pipeline),
        {"doubler": list(range(1, n + 1))},
    )


class TestKBKFusion:
    def test_fused_outputs_match_pure(self):
        pure = run(KBKModel())
        fused = run(KBKModel(fused_groups=[("adder", "sink")]))
        assert sorted(fused.outputs) == sorted(pure.outputs)
        assert sorted(fused.outputs) == toy_expected(range(1, 41))

    def test_fusion_reduces_waves(self):
        pure = run(KBKModel())
        fused = run(KBKModel(fused_groups=[("adder", "sink")]))
        assert fused.extras["waves"] < pure.extras["waves"]

    def test_fusion_reduces_launch_and_sync_overhead(self):
        pure = run(KBKModel())
        fused = run(KBKModel(fused_groups=[("adder", "sink")]))
        assert (
            fused.device_metrics.kernel_launches
            < pure.device_metrics.kernel_launches
        )
        # With the toy's cheap compute, fewer launches means less time.
        assert fused.time_ms < pure.time_ms

    def test_recursive_stage_can_be_fused(self):
        fused = run(KBKModel(fused_groups=[("doubler",)]))
        # Recursion collapses into the wave (the fused group inlines the
        # self-emissions), so only one doubler wave is needed.
        assert sorted(fused.outputs) == toy_expected(range(1, 41))
        assert fused.extras["waves"] == 3

    def test_full_fusion_is_one_wave(self):
        fused = run(
            KBKModel(fused_groups=[("doubler", "adder", "sink")])
        )
        assert fused.extras["waves"] == 1
        assert sorted(fused.outputs) == toy_expected(range(1, 41))

    def test_stats_attribute_fused_tasks_to_their_stages(self):
        fused = run(KBKModel(fused_groups=[("adder", "sink")]), n=10)
        assert fused.stage_stats["adder"].tasks == 10
        assert fused.stage_stats["sink"].tasks == 10

    def test_unknown_fused_stage_rejected(self):
        from repro.core.errors import PipelineDefinitionError

        with pytest.raises(PipelineDefinitionError):
            run(KBKModel(fused_groups=[("ghost",)]))

    def test_label_mentions_fusion(self):
        fused = run(KBKModel(fused_groups=[("adder", "sink")]))
        assert "fused [adder+sink]" in fused.config_description
