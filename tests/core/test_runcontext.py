"""RunContext: outstanding accounting, quiescence, fetch policies."""

import pytest

from repro.core import ExecutionError, FunctionalExecutor
from repro.core.errors import ConfigurationError
from repro.core.runcontext import RunContext
from repro.gpu import GPUDevice, K20C

from .conftest import toy_pipeline


@pytest.fixture
def ctx():
    pipeline = toy_pipeline()
    device = GPUDevice(K20C)
    return RunContext(pipeline, device, FunctionalExecutor(pipeline))


class TestOutstandingAccounting:
    def test_insert_initial_counts(self, ctx):
        ctx.insert_initial({"doubler": [1, 2, 3]})
        assert ctx.outstanding["doubler"] == 3
        assert ctx.total_outstanding == 3
        assert not ctx.done

    def test_insert_initial_charges_memcpy(self, ctx):
        ctx.insert_initial({"doubler": [1, 2, 3]})
        assert ctx.device.metrics.host_to_device_copies == 1

    def test_complete_decrements(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        ctx.complete_tasks("doubler", 1)
        assert ctx.done

    def test_over_completion_raises(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        with pytest.raises(ExecutionError):
            ctx.complete_tasks("doubler", 2)

    def test_children_keep_pipeline_alive(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        ctx.enqueue_children([("adder", 16)], producer_sm=0)
        ctx.complete_tasks("doubler", 1)
        assert not ctx.done
        assert ctx.outstanding["adder"] == 1


class TestQuiescence:
    def test_upstream_work_blocks_quiescence(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        # doubler can reach sink, so sink is not quiescent.
        assert not ctx.is_quiescent(["sink"])

    def test_downstream_work_does_not_block_upstream(self, ctx):
        ctx.insert_initial({"sink": [170]})
        # sink cannot reach doubler: doubler is quiescent.
        assert ctx.is_quiescent(["doubler"])
        assert not ctx.is_quiescent(["sink"])

    def test_empty_context_is_quiescent(self, ctx):
        assert ctx.is_quiescent(["doubler", "adder", "sink"])


class TestFetchAsync:
    def run_engine(self, ctx):
        ctx.device.engine.run()

    def test_immediate_delivery(self, ctx):
        ctx.insert_initial({"doubler": [1, 2, 3]})
        got = []
        ctx.fetch_async(("doubler",), lambda s: 2, got.append)
        self.run_engine(ctx)
        stage, items, cost = got[0]
        assert stage == "doubler"
        assert [qi.payload for qi in items] == [1, 2]
        assert cost > 0

    def test_quiescent_delivers_none(self, ctx):
        got = []
        ctx.fetch_async(("sink",), lambda s: 1, got.append)
        self.run_engine(ctx)
        assert got == [None]

    def test_parked_block_woken_by_enqueue(self, ctx):
        ctx.insert_initial({"doubler": [1]})  # keeps sink non-quiescent
        got = []
        ctx.fetch_async(("sink",), lambda s: 1, got.append)
        self.run_engine(ctx)
        assert got == []  # parked
        ctx.enqueue_children([("sink", 99)], producer_sm=None)
        self.run_engine(ctx)
        assert got and got[0][0] == "sink"

    def test_parked_block_released_on_quiescence(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        got = []
        ctx.fetch_async(("sink",), lambda s: 1, got.append)
        self.run_engine(ctx)
        ctx.complete_tasks("doubler", 1)  # no children -> sink quiescent
        self.run_engine(ctx)
        assert got == [None]

    def test_deepest_first_policy(self, ctx):
        ctx.insert_initial({"doubler": [1], "sink": [2]})
        got = []
        ctx.fetch_async(("doubler", "sink"), lambda s: 1, got.append)
        self.run_engine(ctx)
        assert got[0][0] == "sink"  # deeper stage wins

    def test_fifo_policy(self):
        pipeline = toy_pipeline()
        ctx = RunContext(
            pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline),
            policy="fifo",
        )
        ctx.insert_initial({"doubler": [1], "sink": [2]})
        got = []
        ctx.fetch_async(("doubler", "sink"), lambda s: 1, got.append)
        ctx.device.engine.run()
        assert got[0][0] == "doubler"

    def test_unknown_policy_rejected(self):
        pipeline = toy_pipeline()
        with pytest.raises(ConfigurationError):
            RunContext(
                pipeline,
                GPUDevice(K20C),
                FunctionalExecutor(pipeline),
                policy="bogus",
            )


class TestWaitForWork:
    def test_signals_existing_work(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        got = []
        ctx.wait_for_work(("doubler",), got.append)
        ctx.device.engine.run()
        assert got == [True]

    def test_signals_quiescence(self, ctx):
        got = []
        ctx.wait_for_work(("adder",), got.append)
        ctx.device.engine.run()
        assert got == [None]

    def test_parked_then_notified(self, ctx):
        ctx.insert_initial({"doubler": [1]})
        got = []
        ctx.wait_for_work(("adder",), got.append)
        ctx.device.engine.run()
        assert got == []
        ctx.enqueue_children([("adder", 5)], producer_sm=None)
        ctx.device.engine.run()
        assert got == [True]


class TestCostHelpers:
    def test_push_cost_groups_by_target(self, ctx):
        single = ctx.push_cost([("adder", 1)])
        double_same = ctx.push_cost([("adder", 1), ("adder", 2)])
        double_mixed = ctx.push_cost([("adder", 1), ("sink", 2)])
        assert single < double_same < double_mixed

    def test_empty_push_is_free(self, ctx):
        assert ctx.push_cost([]) == 0.0

    def test_backlog(self, ctx):
        ctx.insert_initial({"doubler": [1, 2], "adder": [3]})
        assert ctx.backlog(["doubler"]) == 2
        assert ctx.backlog(["doubler", "adder"]) == 3
