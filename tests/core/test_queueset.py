"""Shared vs distributed (work-stealing) queue organisations."""

import pytest

from repro.core import FunctionalExecutor
from repro.core.errors import ConfigurationError
from repro.core.models import MegakernelModel
from repro.core.queues import queue_op_cost
from repro.core.queueset import (
    HOST_SHARD,
    DistributedQueueSet,
    SharedQueueSet,
    make_queue_set,
)
from repro.gpu import GPUDevice, K20C

from .conftest import toy_expected, toy_pipeline

STAGES = {"a": 16, "b": 272}


class TestFactory:
    def test_modes(self):
        assert isinstance(
            make_queue_set("shared", STAGES, K20C), SharedQueueSet
        )
        assert isinstance(
            make_queue_set("distributed", STAGES, K20C), DistributedQueueSet
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_queue_set("quantum", STAGES, K20C)


class TestSharedQueueSet:
    def test_push_pop_roundtrip(self):
        qs = SharedQueueSet(STAGES, K20C)
        qs.push("a", "x", producer_sm=0)
        qs.push("a", "y", producer_sm=1)
        batch, cost = qs.pop("a", 10, sm_id=5)
        assert [qi.payload for qi in batch] == ["x", "y"]
        assert cost > 0
        assert not qs.has_work("a")

    def test_contention_raises_cost(self):
        calm = SharedQueueSet(STAGES, K20C)
        busy = SharedQueueSet(STAGES, K20C)
        busy.contention_level = 8.0
        for qs in (calm, busy):
            qs.push("a", "x", None)
        _, calm_cost = calm.pop("a", 1, 0)
        _, busy_cost = busy.pop("a", 1, 0)
        assert busy_cost > calm_cost

    def test_never_steals(self):
        qs = SharedQueueSet(STAGES, K20C)
        qs.push("a", "x", producer_sm=3)
        qs.pop("a", 1, sm_id=9)
        assert qs.steals == 0


class TestDistributedQueueSet:
    def test_local_pop_prefers_own_shard(self):
        qs = DistributedQueueSet(STAGES, K20C)
        qs.push("a", "mine", producer_sm=2)
        qs.push("a", "theirs", producer_sm=7)
        batch, _cost = qs.pop("a", 10, sm_id=2)
        assert [qi.payload for qi in batch] == ["mine"]
        assert qs.steals == 0

    def test_steals_from_richest_when_local_empty(self):
        qs = DistributedQueueSet(STAGES, K20C)
        qs.push("a", "r1", producer_sm=7)
        qs.push("a", "r2", producer_sm=7)
        qs.push("a", "p", producer_sm=3)
        batch, _cost = qs.pop("a", 10, sm_id=2)
        # shard 7 is richest -> stolen wholesale.
        assert [qi.payload for qi in batch] == ["r1", "r2"]
        assert qs.steals == 1

    def test_steal_costs_more_than_local(self):
        qs = DistributedQueueSet(STAGES, K20C)
        qs.push("a", "x", producer_sm=2)
        _, local_cost = qs.pop("a", 1, sm_id=2)
        qs.push("a", "y", producer_sm=2)
        _, steal_cost = qs.pop("a", 1, sm_id=9)
        assert steal_cost > local_cost

    def test_host_shard_for_initial_items(self):
        qs = DistributedQueueSet(STAGES, K20C)
        qs.push("a", "init", producer_sm=None)
        batch, _ = qs.pop("a", 1, sm_id=None)
        assert batch[0].payload == "init"

    def test_backlog_spans_shards(self):
        qs = DistributedQueueSet(STAGES, K20C)
        for sm in (0, 4, 9, None):
            qs.push("a", sm, producer_sm=sm)
        assert qs.backlog("a") == 4
        assert qs.has_work("a")
        qs.drain("a")
        assert qs.backlog("a") == 0
        assert not qs.has_work("a")

    def test_stats_merge_all_shards(self):
        qs = DistributedQueueSet(STAGES, K20C)
        qs.push("a", 1, producer_sm=0)
        qs.push("a", 2, producer_sm=5)
        stats = qs.stats()
        assert stats["a"].enqueued == 2
        assert stats["a"].bytes_moved == 32


class TestDistributedEndToEnd:
    def run_mode(self, mode):
        pipeline = toy_pipeline()
        device = GPUDevice(K20C)
        return MegakernelModel(queue_mode=mode).run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            {"doubler": list(range(1, 60))},
        )

    def test_same_outputs_both_modes(self):
        shared = self.run_mode("shared")
        distributed = self.run_mode("distributed")
        assert sorted(shared.outputs) == sorted(distributed.outputs)
        assert sorted(shared.outputs) == toy_expected(range(1, 60))

    def test_distributed_mode_completes_deterministically(self):
        first = self.run_mode("distributed")
        second = self.run_mode("distributed")
        assert first.time_ms == second.time_ms


class TestQueueCostAccounting:
    """Pin the cost accounting the batch-drain path depends on.

    Coalesced drains pop a block's worth of same-stage items in one queue
    operation; these tests freeze the amortisation formula and the
    shared-queue push-cost memo so batching can never silently change
    what a queue op charges.
    """

    def test_push_cost_memo_tracks_contention(self):
        qs = SharedQueueSet(STAGES, K20C)
        calm = qs.push("a", "x", None)
        # Memo hit: identical cost while the contention level is stable.
        assert qs.push("a", "y", None) == calm
        qs.contention_level = 8.0
        contended = qs.push("a", "z", None)
        assert contended == calm + K20C.queue_contention_cycles * 8.0
        # Dropping back must rebuild the memo, not serve the stale entry.
        qs.contention_level = 0.0
        assert qs.push("a", "w", None) == calm

    def test_batch_pop_amortises_fixed_cost(self):
        qs = SharedQueueSet(STAGES, K20C)
        for index in range(6):
            qs.push("b", index, None)
        batch, cost = qs.pop("b", 6, sm_id=0)
        assert len(batch) == 6
        # One op moving six items: fixed cost paid once, bytes per item.
        assert cost == queue_op_cost(K20C, STAGES["b"], 6, 0.0)
        assert cost < 6 * queue_op_cost(K20C, STAGES["b"], 1, 0.0)

    def test_drain_clears_depth_ledger(self):
        qs = SharedQueueSet(STAGES, K20C)
        for index in range(4):
            qs.push("a", index, None)
        assert qs.backlog("a") == 4
        assert len(qs.drain("a")) == 4
        assert qs.backlog("a") == 0

    def test_distributed_push_sees_no_contention(self):
        qs = DistributedQueueSet(STAGES, K20C)
        qs.contention_level = 8.0
        cost = qs.push("a", "x", producer_sm=2)
        assert cost == queue_op_cost(K20C, STAGES["a"], 1, 0.0)
