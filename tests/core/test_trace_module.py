"""Trace data structure: stats, node access, replay placeholders."""

import pytest

from repro.core.stage import TaskCost
from repro.core.trace import Trace, TraceNode
from repro.core.tuner.profiler import replay_placeholders


def make_trace():
    trace = Trace()
    trace.nodes = [
        TraceNode(0, "a", TaskCost(100.0), (1, 2), 0),
        TraceNode(1, "b", TaskCost(200.0), (), 1),
        TraceNode(2, "b", TaskCost(300.0), (), 1),
    ]
    trace.initial = {"a": [0]}
    return trace


class TestTraceStats:
    def test_num_tasks(self):
        assert make_trace().num_tasks == 3

    def test_tasks_per_stage(self):
        assert make_trace().tasks_per_stage() == {"a": 1, "b": 2}

    def test_work_per_stage(self):
        work = make_trace().work_per_stage()
        assert work["a"] == 100.0
        assert work["b"] == 500.0

    def test_mean_cost(self):
        trace = make_trace()
        assert trace.mean_cost("b") == 250.0
        assert trace.mean_cost("missing") == 0.0

    def test_node_lookup(self):
        trace = make_trace()
        assert trace.node(1).stage == "b"
        assert trace.node(0).children == (1, 2)


class TestReplayPlaceholders:
    def test_multiplicity_matches_initials(self):
        trace = make_trace()
        trace.initial = {"a": [0], "b": [1, 2]}
        placeholders = replay_placeholders(trace)
        assert len(placeholders["a"]) == 1
        assert len(placeholders["b"]) == 2
        assert all(p is None for p in placeholders["b"])


class TestTracePrefix:
    def test_prefix_drops_edges_past_the_cut(self):
        prefix = make_trace().prefix(2)
        assert prefix.num_tasks == 2
        assert prefix.nodes[0].children == (1,)  # child 2 was cut
        assert prefix.initial == {"a": [0]}
        assert prefix.recorded_outputs == {}

    def test_prefix_keeps_entry_nodes(self):
        trace = make_trace()
        trace.initial = {"a": [0], "b": [1]}
        prefix = trace.prefix(1)
        assert prefix.initial == {"a": [0]}  # entries past the cut drop

    def test_full_length_prefix_is_identity(self):
        trace = make_trace()
        assert trace.prefix(3) is trace
        assert trace.prefix(99) is trace

    def test_prefix_is_replayable(self):
        """A prefix of a real recorded trace must replay cleanly (its
        closure property: children always have larger ids)."""
        from repro.core.tuner.offline import OfflineTuner, TunerOptions
        from repro.core.tuner.profiler import profile_pipeline
        from repro.gpu.specs import K20C

        from .conftest import toy_pipeline

        pipe = toy_pipeline()
        _, trace = profile_pipeline(pipe, K20C, {"doubler": list(range(1, 40))})
        assert all(
            child > node.node_id
            for node in trace.nodes
            for child in node.children
        )
        prefix = trace.prefix(trace.num_tasks // 3)
        tuner = OfflineTuner(
            pipe, K20C, prefix,
            options=TunerOptions(max_configs=1, prefix_frac=None),
        )
        config = tuner.candidates()[0]
        assert tuner.evaluate(config) > 0.0
