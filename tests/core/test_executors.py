"""Functional, recording, and replay executors."""

import pytest

from repro.core import (
    ExecutionError,
    FunctionalExecutor,
    RecordingExecutor,
    ReplayExecutor,
)
from repro.core.tuner.profiler import profile_pipeline, replay_placeholders

from .conftest import toy_pipeline


def expand_fully(executor, initial):
    """BFS the task graph through an executor, returning sink outputs."""
    outputs = []
    frontier = []
    for stage, payloads in initial.items():
        for payload in payloads:
            frontier.append((stage, executor.wrap_initial(stage, payload)))
    while frontier:
        stage, item = frontier.pop(0)
        result = executor.run_task(stage, item)
        outputs.extend(result.outputs)
        frontier.extend(result.children)
    return outputs


class TestFunctionalExecutor:
    def test_runs_real_code(self, pipeline):
        executor = FunctionalExecutor(pipeline)
        result = executor.run_task("doubler", 8)
        assert result.children == [("adder", 16)]
        assert result.cost.cycles_per_thread == 500.0

    def test_full_expansion_produces_outputs(
        self, pipeline, initial_items, expected_outputs
    ):
        outputs = expand_fully(FunctionalExecutor(pipeline), initial_items)
        assert sorted(outputs) == expected_outputs


class TestRecordingExecutor:
    def test_trace_structure(self, pipeline, initial_items):
        executor = RecordingExecutor(pipeline)
        expand_fully(executor, initial_items)
        trace = executor.trace
        counts = trace.tasks_per_stage()
        # 39 inputs, each eventually visits adder and sink exactly once.
        assert counts["adder"] == 39
        assert counts["sink"] == 39
        assert counts["doubler"] > 39  # recursion adds tasks
        assert len(trace.initial["doubler"]) == 39

    def test_trace_children_link_correct_stages(self, pipeline, initial_items):
        executor = RecordingExecutor(pipeline)
        expand_fully(executor, initial_items)
        trace = executor.trace
        for node in trace.nodes:
            for child_id in node.children:
                child = trace.node(child_id)
                assert child.stage in pipeline.stage(node.stage).emits_to


class TestReplayExecutor:
    def test_replay_matches_recorded_costs(self, pipeline, initial_items):
        recorder = RecordingExecutor(pipeline)
        expand_fully(recorder, initial_items)
        trace = recorder.trace

        replay = ReplayExecutor(toy_pipeline(), trace)
        outputs = expand_fully(replay, replay_placeholders(trace))
        # One placeholder output per recorded sink emission.
        assert len(outputs) == 39

    def test_replay_stage_mismatch_raises(self, pipeline, initial_items):
        recorder = RecordingExecutor(pipeline)
        expand_fully(recorder, initial_items)
        replay = ReplayExecutor(pipeline, recorder.trace)
        node = recorder.trace.initial["doubler"][0]
        with pytest.raises(ExecutionError, match="mismatch"):
            replay.run_task("sink", node)

    def test_replay_exhausted_initials_raises(self, pipeline, initial_items):
        recorder = RecordingExecutor(pipeline)
        expand_fully(recorder, initial_items)
        replay = ReplayExecutor(pipeline, recorder.trace)
        for _ in range(39):
            replay.wrap_initial("doubler", None)
        with pytest.raises(ExecutionError, match="no recorded initial"):
            replay.wrap_initial("doubler", None)


class TestInlineExecution:
    def test_inline_consumes_whole_subtree(self, pipeline):
        executor = FunctionalExecutor(pipeline)
        result = executor.run_inline(
            "doubler", 1, frozenset(pipeline.stage_names)
        )
        # 1 -> 2 -> 4 -> 8 -> 16 (4 doubler tasks), then adder, then sink.
        stages = [t.stage for t in result.tasks]
        assert stages.count("doubler") == 4
        assert stages.count("adder") == 1
        assert stages.count("sink") == 1
        assert result.children == []
        assert result.outputs == [170]

    def test_inline_partial_set_escapes(self, pipeline):
        executor = FunctionalExecutor(pipeline)
        result = executor.run_inline("doubler", 1, frozenset({"doubler"}))
        assert result.children == [("adder", 16)]
        assert result.outputs == []

    def test_inline_total_cycles(self, pipeline):
        executor = FunctionalExecutor(pipeline)
        result = executor.run_inline(
            "doubler", 8, frozenset(pipeline.stage_names)
        )
        assert result.total_cycles == 500.0 + 900.0 + 300.0


class TestProfiler:
    def test_profile_counts_and_occupancy(self, pipeline, initial_items):
        from repro.gpu.specs import K20C

        profile, trace = profile_pipeline(pipeline, K20C, initial_items)
        assert profile.total_tasks == trace.num_tasks
        assert profile.stages["adder"].tasks == 39
        # adder: 120 regs * 256 threads -> 2 blocks/SM on K20C.
        assert profile.stages["adder"].max_blocks_per_sm == 2
        assert profile.stages["sink"].max_blocks_per_sm == 6

    def test_weights_reflect_total_work(self, pipeline, initial_items):
        from repro.gpu.specs import K20C

        profile, _trace = profile_pipeline(pipeline, K20C, initial_items)
        weights = profile.weights()
        assert weights["adder"] == pytest.approx(39 * 900.0)
        assert weights["sink"] == pytest.approx(39 * 300.0)
