"""Lifecycle of the persistent worker pool and its zero-copy handoff.

The pool (:mod:`repro.core.tuner.pool`) is process-wide state shared by
the tuner, the experiment harness and the serving harness, so these
tests pin the behaviours the rest of the repo builds on: workers are
reused across ``map_shards`` calls, teardown is clean (no orphaned
processes, interpreter exit never hangs), a crashed worker is respawned
without corrupting the stride merge, and shared-memory segments are
released on success *and* error paths.
"""

import os
import pickle
import subprocess
import sys
import textwrap
import time

import pytest

from repro.core.tuner import handoff, pool
from repro.core.tuner.handoff import (
    InlinePayload,
    SharedPayload,
    clear_resolve_cache,
    live_segment_names,
    publish_payload,
)
from repro.core.tuner.pool import (
    ensure_workers,
    map_shards,
    pool_size,
    shutdown_pool,
    stride_shards,
)

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

#: Padding that pushes any payload over the shared-memory threshold.
_BIG = b"x" * (handoff.SHARED_MIN_BYTES * 2)


@pytest.fixture(autouse=True)
def _isolated_pool():
    """Each test starts and ends with no pool and no cached payloads."""
    shutdown_pool()
    clear_resolve_cache()
    yield
    shutdown_pool()
    clear_resolve_cache()


def _shard_pid(payload, shard):
    return (os.getpid(), list(shard))


def _double(payload, shard):
    return [item * 2 for item in shard]


def _crash_once_then_double(payload, shard):
    """First worker to claim the marker dies hard; reruns succeed."""
    try:
        fd = os.open(
            payload["marker"], os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
        os.close(fd)
        os._exit(1)
    except FileExistsError:
        pass
    return [item * 2 for item in shard]


def _raise_value_error(payload, shard):
    raise ValueError("shard failure")


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid recycled by root
        return True
    return True


class TestWorkerReuse:
    def test_workers_reused_across_map_shards_calls(self):
        items = list(range(8))
        shards = stride_shards(items, 2)
        first = map_shards(_shard_pid, None, shards, workers=2)
        executor = ensure_workers(2)
        second = map_shards(_shard_pid, None, shards, workers=2)
        third = map_shards(_shard_pid, None, shards, workers=2)
        pids = {pid for run in (first, second, third) for pid, _ in run}
        assert os.getpid() not in pids  # really ran out of process
        # Same persistent pool served every dispatch: the executor is
        # never replaced, and across three dispatches at most the pool's
        # two workers ever existed (the old spawn-per-invocation pool
        # forked two fresh processes per call — six distinct pids).
        assert ensure_workers(2) is executor
        assert len(pids) <= 2
        # And the shard contents still merge back exactly.
        assert [shard for _, shard in first] == shards

    def test_pool_grows_but_never_shrinks(self):
        ensure_workers(2)
        assert pool_size() == 2
        ensure_workers(1)  # spare capacity is kept
        assert pool_size() == 2
        ensure_workers(4)  # growth replaces the pool
        assert pool_size() == 4

    def test_shared_across_subsystems(self, tmp_path):
        """A harness dispatch reuses the pool a direct dispatch spawned."""
        shards = stride_shards(list(range(4)), 2)
        before = {
            pid for pid, _ in map_shards(_shard_pid, None, shards, workers=2)
        }
        executor = ensure_workers(2)
        from repro.harness.pool import run_suite

        run_suite(
            workloads=["ldpc"],
            workers=2,
            cache_dir=str(tmp_path / "traces"),
        )
        after = {
            pid for pid, _ in map_shards(_shard_pid, None, shards, workers=2)
        }
        # The harness dispatch went through the very same executor, so
        # the worker population stays within the pool's two processes.
        assert ensure_workers(2) is executor
        assert len(before | after) <= 2


class TestTeardown:
    def test_shutdown_kills_workers(self):
        shards = stride_shards(list(range(4)), 2)
        pids = {
            pid for pid, _ in map_shards(_shard_pid, None, shards, workers=2)
        }
        assert pids and all(_alive(pid) for pid in pids)
        shutdown_pool()
        assert pool_size() == 0
        deadline = time.monotonic() + 10.0
        while any(_alive(pid) for pid in pids):
            assert time.monotonic() < deadline, "workers outlived shutdown"
            time.sleep(0.05)

    def test_shutdown_is_idempotent_and_respawns_lazily(self):
        shutdown_pool()
        shutdown_pool()
        assert pool_size() == 0
        shards = stride_shards(list(range(4)), 2)
        assert map_shards(_double, None, shards, workers=2) == [
            [item * 2 for item in shard] for shard in shards
        ]

    def test_atexit_registered_with_first_pool(self):
        ensure_workers(2)
        assert pool._ATEXIT_REGISTERED

    def test_interpreter_exit_does_not_hang(self):
        """A process that used the pool exits cleanly (atexit teardown)."""
        script = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {_SRC!r})
            from repro.core.tuner.pool import map_shards, stride_shards

            def pid_of(payload, shard):
                import os
                return os.getpid()

            shards = stride_shards(list(range(4)), 2)
            pids = map_shards(pid_of, None, shards, workers=2)
            import os
            assert os.getpid() not in pids, pids
            print("ok")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-"],
            input=script,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout


class TestCrashRecovery:
    def test_crashed_worker_respawned_merge_intact(self, tmp_path):
        items = list(range(12))
        shards = stride_shards(items, 3)
        payload = {"marker": str(tmp_path / "crash-once")}
        results = map_shards(
            _crash_once_then_double, payload, shards, workers=3
        )
        # The crash broke one pool attempt; the respawned workers rerun
        # the unfinished shards and the stride merge is byte-identical
        # to the serial evaluation.
        assert results == [[item * 2 for item in shard] for shard in shards]
        merged = [0] * len(items)
        for offset, shard_result in enumerate(results):
            merged[offset :: len(shards)] = shard_result
        assert merged == [item * 2 for item in items]

    def test_pool_usable_after_crash_dispatch(self, tmp_path):
        payload = {"marker": str(tmp_path / "crash-once")}
        shards = stride_shards(list(range(6)), 2)
        map_shards(_crash_once_then_double, payload, shards, workers=2)
        # The replacement pool keeps serving later dispatches.
        assert map_shards(_double, None, shards, workers=2) == [
            [item * 2 for item in shard] for shard in shards
        ]


class TestZeroCopyHandoff:
    def test_small_payload_rides_inline(self):
        handle = publish_payload({"a": 1})
        assert isinstance(handle, InlinePayload)
        assert handle.resolve() == {"a": 1}
        handle.release()
        assert live_segment_names() == frozenset()

    def test_large_payload_uses_shared_memory(self):
        payload = {"blob": _BIG, "n": 7}
        handle = publish_payload(payload)
        assert isinstance(handle, SharedPayload)
        assert live_segment_names() == {handle.name}
        try:
            # The handle that crosses the process boundary is tiny and
            # segment-free; resolving it reproduces the payload.
            wire = pickle.loads(pickle.dumps(handle))
            assert pickle.dumps(wire) != pickle.dumps(payload)
            assert wire.resolve() == payload
        finally:
            handle.release()
        assert live_segment_names() == frozenset()

    def test_resolve_cache_survives_release(self):
        payload = {"blob": _BIG}
        handle = publish_payload(payload)
        wire = pickle.loads(pickle.dumps(handle))
        first = wire.resolve()
        handle.release()  # segment gone; the decoded copy is cached
        assert wire.resolve() is first

    def test_release_is_idempotent(self):
        handle = publish_payload({"blob": _BIG})
        handle.release()
        handle.release()
        assert live_segment_names() == frozenset()

    def test_large_payload_crosses_pool_and_releases(self):
        payload = {"blob": _BIG, "factor": 3}
        shards = stride_shards(list(range(6)), 2)
        results = map_shards(_scale_by_payload, payload, shards, workers=2)
        assert results == [
            [item * 3 for item in shard] for shard in shards
        ]
        assert live_segment_names() == frozenset()

    def test_segments_released_when_a_shard_raises(self):
        shards = stride_shards(list(range(6)), 2)
        with pytest.raises(ValueError, match="shard failure"):
            map_shards(
                _raise_value_error, {"blob": _BIG}, shards, workers=2
            )
        assert live_segment_names() == frozenset()

    def test_segments_released_on_in_process_fallback(self):
        # A payload that pickles but whose shard function raises one of
        # the fallback errors degrades to in-process execution; the
        # published segment must still be gone afterwards.
        shards = stride_shards(list(range(4)), 2)
        with pytest.raises(TypeError):
            map_shards(_raise_type_error, {"blob": _BIG}, shards, workers=2)
        assert live_segment_names() == frozenset()


def _scale_by_payload(payload, shard):
    return [item * payload["factor"] for item in shard]


def _raise_type_error(payload, shard):
    raise TypeError("unpicklable result stand-in")
