"""Pipeline graph: topology validation, classification, reachability."""

import pytest

from repro.core import OUTPUT, Pipeline, PipelineDefinitionError, Stage, TaskCost


def make_stage(name, emits=(), sync=False):
    return type(
        f"S_{name}",
        (Stage,),
        {
            "name": name,
            "emits_to": tuple(emits),
            "requires_global_sync": sync,
            "execute": lambda self, item, ctx: None,
            "cost": lambda self, item: TaskCost(1.0),
        },
    )()


class TestConstruction:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineDefinitionError):
            Pipeline([])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PipelineDefinitionError, match="duplicate"):
            Pipeline([make_stage("a"), make_stage("a")])

    def test_unknown_emission_target_rejected(self):
        with pytest.raises(PipelineDefinitionError, match="unknown"):
            Pipeline([make_stage("a", emits=("ghost",))])

    def test_output_target_always_allowed(self):
        pipe = Pipeline([make_stage("a", emits=(OUTPUT,))])
        assert pipe.stage_names == ["a"]

    def test_unnamed_stage_rejected(self):
        class Nameless(Stage):
            emits_to = ()

        with pytest.raises(PipelineDefinitionError, match="name"):
            Nameless()

    def test_stage_lookup_unknown_raises(self):
        pipe = Pipeline([make_stage("a")])
        with pytest.raises(PipelineDefinitionError):
            pipe.stage("b")


class TestClassification:
    def test_linear(self):
        pipe = Pipeline(
            [
                make_stage("a", emits=("b",)),
                make_stage("b", emits=("c",)),
                make_stage("c", emits=(OUTPUT,)),
            ]
        )
        assert pipe.structure == "linear"
        assert not pipe.has_recursion
        assert not pipe.has_backward_edges

    def test_recursion(self):
        pipe = Pipeline(
            [
                make_stage("a", emits=("a", "b")),
                make_stage("b", emits=(OUTPUT,)),
            ]
        )
        assert pipe.structure == "recursion"
        assert pipe.has_recursion

    def test_loop(self):
        pipe = Pipeline(
            [
                make_stage("a", emits=("b",)),
                make_stage("b", emits=("c",)),
                make_stage("c", emits=("a", OUTPUT)),
            ]
        )
        assert pipe.structure == "loop"
        assert pipe.has_recursion  # a cycle makes every member self-reaching
        assert pipe.has_backward_edges

    def test_global_sync_flag(self):
        pipe = Pipeline([make_stage("a", sync=True)])
        assert pipe.requires_global_sync

    def test_workload_structures_match_table1(self):
        from repro.workloads.registry import all_workloads

        for name, spec in all_workloads().items():
            pipe = spec.build_pipeline(spec.quick_params())
            assert pipe.structure == spec.structure, name
            assert len(pipe.stage_names) == spec.stage_count, name


class TestReachability:
    @pytest.fixture
    def pipe(self):
        return Pipeline(
            [
                make_stage("a", emits=("b",)),
                make_stage("b", emits=("b", "c")),
                make_stage("c", emits=(OUTPUT,)),
            ]
        )

    def test_reachable_from_includes_self(self, pipe):
        assert "a" in pipe.reachable_from("a")

    def test_forward_reachability(self, pipe):
        assert pipe.reachable_from("a") == frozenset({"a", "b", "c"})
        assert pipe.reachable_from("c") == frozenset({"c"})

    def test_can_reach(self, pipe):
        assert pipe.can_reach("a", ["c"])
        assert not pipe.can_reach("c", ["a"])
        assert pipe.can_reach("b", ["b"])  # self-loop


class TestGrouping:
    def test_contiguous_groups(self):
        pipe = Pipeline(
            [make_stage(n) for n in ("a", "b", "c", "d")]
        )
        assert pipe.contiguous_groups([2, 2]) == [("a", "b"), ("c", "d")]
        assert pipe.contiguous_groups([1, 3]) == [("a",), ("b", "c", "d")]

    def test_partition_must_cover(self):
        pipe = Pipeline([make_stage(n) for n in ("a", "b")])
        with pytest.raises(PipelineDefinitionError):
            pipe.contiguous_groups([1])

    def test_zero_group_size_rejected(self):
        pipe = Pipeline([make_stage(n) for n in ("a", "b")])
        with pytest.raises(PipelineDefinitionError):
            pipe.contiguous_groups([0, 2])
