"""The VersaPipe facade: insert -> tune -> run."""

import pytest

from repro.core import ConfigurationError, GroupConfig, PipelineConfig
from repro.core.framework import VersaPipe
from repro.core.tuner.offline import TunerOptions
from repro.gpu.specs import K20C

from .conftest import toy_expected, toy_pipeline


class TestVersaPipeFacade:
    def test_tune_then_run(self):
        vp = VersaPipe(
            toy_pipeline(),
            spec=K20C,
            tuner_options=TunerOptions(max_configs=25),
        )
        vp.insert_into_queue("doubler", list(range(1, 50)))
        report = vp.tune()
        assert vp.config is report.best_config
        result = vp.run()
        assert result.model == "versapipe"
        assert sorted(result.outputs) == toy_expected(range(1, 50))

    def test_run_auto_tunes_when_unconfigured(self):
        vp = VersaPipe(
            toy_pipeline(),
            spec=K20C,
            tuner_options=TunerOptions(max_configs=10),
        )
        vp.insert_into_queue("doubler", [1, 2, 3])
        result = vp.run()
        assert vp.tuner_report is not None
        assert len(result.outputs) == 3

    def test_explicit_config_skips_tuning(self):
        config = PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler", "adder", "sink"),
                    model="megakernel",
                    sm_ids=tuple(range(13)),
                ),
            )
        )
        vp = VersaPipe(toy_pipeline(), spec=K20C, config=config)
        vp.insert_into_queue("doubler", [1])
        result = vp.run()
        assert vp.tuner_report is None
        assert result.outputs == [170]

    def test_tune_without_items_raises(self):
        vp = VersaPipe(toy_pipeline(), spec=K20C)
        with pytest.raises(ConfigurationError, match="initial items"):
            vp.tune()

    def test_insert_validates_stage_name(self):
        vp = VersaPipe(toy_pipeline(), spec=K20C)
        with pytest.raises(Exception):
            vp.insert_into_queue("nonexistent", [1])

    def test_initial_items_accumulate(self):
        vp = VersaPipe(toy_pipeline(), spec=K20C)
        vp.insert_into_queue("doubler", [1, 2])
        vp.insert_into_queue("doubler", [3])
        assert vp.initial_items == {"doubler": [1, 2, 3]}
