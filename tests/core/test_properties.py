"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FunctionalExecutor, Pipeline, Stage, TaskCost
from repro.core.models import KBKModel, MegakernelModel, RTCModel
from repro.core.queues import WorkQueue, queue_op_cost
from repro.gpu import GPUDevice
from repro.gpu.kernel import KernelSpec
from repro.gpu.occupancy import max_blocks_per_sm, occupancy_report
from repro.gpu.specs import GTX1080, K20C

from .conftest import toy_expected, toy_pipeline

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


kernel_specs = st.builds(
    KernelSpec,
    name=st.just("k"),
    registers_per_thread=st.integers(min_value=1, max_value=255),
    threads_per_block=st.sampled_from([32, 64, 128, 256, 512, 1024]),
    shared_mem_per_block=st.integers(min_value=0, max_value=48 * 1024),
)


class TestOccupancyProperties:
    @_SETTINGS
    @given(kernel=kernel_specs, spec=st.sampled_from([K20C, GTX1080]))
    def test_resident_blocks_fit_all_resources(self, kernel, spec):
        """The occupancy result, multiplied out, never oversubscribes."""
        from repro.gpu.occupancy import (
            registers_per_block,
            shared_mem_per_block,
        )

        blocks = max_blocks_per_sm(kernel, spec)
        assert blocks >= 0
        if blocks:
            assert blocks * registers_per_block(kernel, spec) <= spec.registers_per_sm
            assert (
                blocks * shared_mem_per_block(kernel, spec)
                <= spec.shared_mem_per_sm
            )
            assert blocks * kernel.threads_per_block <= spec.max_threads_per_sm
            assert blocks <= spec.max_blocks_per_sm

    @_SETTINGS
    @given(kernel=kernel_specs)
    def test_one_more_block_would_not_fit(self, kernel):
        """Occupancy is maximal: blocks+1 violates some limit."""
        from repro.gpu.occupancy import (
            registers_per_block,
            shared_mem_per_block,
        )

        spec = K20C
        blocks = max_blocks_per_sm(kernel, spec)
        extra = blocks + 1
        violates = (
            extra * registers_per_block(kernel, spec) > spec.registers_per_sm
            or extra * shared_mem_per_block(kernel, spec)
            > spec.shared_mem_per_sm
            or extra * kernel.threads_per_block > spec.max_threads_per_sm
            or extra > spec.max_blocks_per_sm
        )
        assert violates

    @_SETTINGS
    @given(kernel=kernel_specs)
    def test_more_registers_never_increase_occupancy(self, kernel):
        heavier = KernelSpec(
            name="k2",
            registers_per_thread=min(255, kernel.registers_per_thread + 16),
            threads_per_block=kernel.threads_per_block,
            shared_mem_per_block=kernel.shared_mem_per_block,
        )
        assert max_blocks_per_sm(heavier, K20C) <= max_blocks_per_sm(
            kernel, K20C
        )

    @_SETTINGS
    @given(kernel=kernel_specs)
    def test_occupancy_fraction_unit_interval(self, kernel):
        frac = occupancy_report(kernel, K20C).occupancy_fraction
        assert 0.0 <= frac <= 1.0


class TestQueueProperties:
    @_SETTINGS
    @given(values=st.lists(st.integers(), max_size=60), chunk=st.integers(1, 7))
    def test_fifo_preserves_order_and_count(self, values, chunk):
        queue = WorkQueue("s", item_bytes=8)
        for value in values:
            queue.push(value)
        drained = []
        while not queue.empty:
            drained.extend(qi.payload for qi in queue.pop_batch(chunk))
        assert drained == values

    @_SETTINGS
    @given(
        item_bytes=st.integers(1, 512),
        n=st.integers(1, 100),
        contention=st.floats(0.0, 16.0),
    )
    def test_cost_monotone_in_items(self, item_bytes, n, contention):
        cost_n = queue_op_cost(K20C, item_bytes, n, contention)
        cost_n1 = queue_op_cost(K20C, item_bytes, n + 1, contention)
        assert cost_n1 > cost_n > 0


class TestModelEquivalenceProperty:
    @_SETTINGS
    @given(
        values=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=25
        )
    )
    def test_models_agree_on_any_input(self, values):
        """RTC, KBK and Megakernel compute identical output multisets for
        arbitrary inputs (schedule independence of the pipeline)."""
        expected = toy_expected(values)
        for model in (RTCModel(), KBKModel(), MegakernelModel()):
            pipeline = toy_pipeline()
            device = GPUDevice(K20C)
            result = model.run(
                pipeline,
                device,
                FunctionalExecutor(pipeline),
                {"doubler": list(values)},
            )
            assert sorted(result.outputs) == expected

    @_SETTINGS
    @given(
        values=st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=25
        )
    )
    def test_time_positive_and_finite(self, values):
        pipeline = toy_pipeline()
        device = GPUDevice(K20C)
        result = MegakernelModel().run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            {"doubler": list(values)},
        )
        assert math.isfinite(result.time_ms)
        assert result.time_ms > 0
