"""Stage API, TaskCost validation, and the work-queue library."""

import pytest

from repro.core import OUTPUT, EmitContext, ExecutionError, Stage, TaskCost
from repro.core.errors import PipelineDefinitionError
from repro.core.queues import QueuedItem, WorkQueue, queue_op_cost
from repro.gpu.specs import K20C


class TestTaskCost:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            TaskCost(-1.0)

    def test_mem_fraction_bounds(self):
        with pytest.raises(ValueError):
            TaskCost(1.0, mem_fraction=1.5)
        with pytest.raises(ValueError):
            TaskCost(1.0, mem_fraction=-0.1)

    def test_negative_min_cycles_rejected(self):
        with pytest.raises(ValueError):
            TaskCost(1.0, min_cycles=-5.0)

    def test_floor_cycles(self):
        assert TaskCost(100.0, min_cycles=50.0).floor_cycles == 100.0
        assert TaskCost(100.0, min_cycles=500.0).floor_cycles == 500.0


class TestEmitContext:
    def test_emit_to_allowed_stage(self):
        ctx = EmitContext(["next"])
        ctx.emit("next", 42)
        assert ctx.children == [("next", 42)]

    def test_emit_to_undeclared_stage_raises(self):
        ctx = EmitContext(["next"])
        with pytest.raises(ExecutionError, match="not declared"):
            ctx.emit("elsewhere", 42)

    def test_emit_output(self):
        ctx = EmitContext([])
        ctx.emit_output("done")
        ctx.emit(OUTPUT, "done2")
        assert ctx.outputs == ["done", "done2"]

    def test_emit_by_stage_class(self):
        class Target(Stage):
            name = "target"

        ctx = EmitContext(["target"])
        ctx.emit(Target, 1)
        assert ctx.children == [("target", 1)]


class TestStageValidation:
    def test_threads_per_item_must_be_positive(self):
        class Bad(Stage):
            name = "bad"
            threads_per_item = 0

        with pytest.raises(PipelineDefinitionError):
            Bad()

    def test_threads_per_item_cannot_exceed_block(self):
        class Bad(Stage):
            name = "bad"
            threads_per_item = 512
            threads_per_block = 256

        with pytest.raises(PipelineDefinitionError):
            Bad()

    def test_items_per_block(self):
        class S(Stage):
            name = "s"
            threads_per_item = 32
            threads_per_block = 256

        assert S().items_per_block() == 8

    def test_kernel_spec_reflects_attributes(self):
        class S(Stage):
            name = "s"
            registers_per_thread = 77
            threads_per_block = 128
            shared_mem_per_block = 4096
            code_bytes = 999

        spec = S().kernel_spec()
        assert spec.registers_per_thread == 77
        assert spec.threads_per_block == 128
        assert spec.shared_mem_per_block == 4096
        assert spec.code_bytes == 999


class TestWorkQueue:
    def test_fifo_order(self):
        queue = WorkQueue("s", item_bytes=8)
        for value in range(5):
            queue.push(value)
        batch = queue.pop_batch(3)
        assert [qi.payload for qi in batch] == [0, 1, 2]
        assert len(queue) == 2

    def test_stats_tracking(self):
        queue = WorkQueue("s", item_bytes=16)
        queue.push(1)
        queue.push(2)
        queue.pop_batch(1)
        assert queue.stats.enqueued == 2
        assert queue.stats.dequeued == 1
        assert queue.stats.peak_length == 2
        assert queue.stats.bytes_moved == 32

    def test_producer_sm_recorded(self):
        queue = WorkQueue("s", item_bytes=8)
        queue.push("payload", producer_sm=7)
        item = queue.pop_batch(1)[0]
        assert isinstance(item, QueuedItem)
        assert item.producer_sm == 7

    def test_pop_from_empty(self):
        queue = WorkQueue("s", item_bytes=8)
        assert queue.pop_batch(4) == []
        assert queue.empty


class TestQueueCost:
    def test_zero_items_cost_nothing(self):
        assert queue_op_cost(K20C, 16, 0, 1.0) == 0.0

    def test_batching_amortises_fixed_cost(self):
        one_each = 10 * queue_op_cost(K20C, 16, 1, 0.0)
        batched = queue_op_cost(K20C, 16, 10, 0.0)
        assert batched < one_each

    def test_larger_items_cost_more(self):
        small = queue_op_cost(K20C, 12, 4, 0.0)
        large = queue_op_cost(K20C, 272, 4, 0.0)
        assert large > small

    def test_contention_increases_cost(self):
        calm = queue_op_cost(K20C, 16, 1, 0.0)
        contended = queue_op_cost(K20C, 16, 1, 8.0)
        assert contended > calm
