"""Configuration validation, search-space enumeration, offline tuner."""

import math

import pytest

from repro.core import GroupConfig, PipelineConfig
from repro.core.errors import ConfigurationError
from repro.core.tuner.offline import OfflineTuner, TunerOptions
from repro.core.tuner.profiler import profile_pipeline
from repro.core.tuner.space import (
    contiguous_partitions,
    enumerate_configs,
    fine_block_maps,
    group_model_candidates,
    sm_allocations,
)
from repro.gpu.specs import K20C

from .conftest import toy_pipeline


class TestGroupConfig:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(stages=("a",), model="quantum", sm_ids=(0,))

    def test_empty_stage_group_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(stages=(), model="megakernel", sm_ids=(0,))

    def test_no_sms_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(stages=("a",), model="megakernel", sm_ids=())

    def test_fine_requires_block_map(self):
        with pytest.raises(ConfigurationError, match="block_map"):
            GroupConfig(stages=("a", "b"), model="fine", sm_ids=(0,))

    def test_fine_block_map_must_cover_stages(self):
        with pytest.raises(ConfigurationError, match="missing"):
            GroupConfig(
                stages=("a", "b"),
                model="fine",
                sm_ids=(0,),
                block_map={"a": 1},
            )


class TestPipelineConfigValidation:
    def _config(self, groups):
        return PipelineConfig(groups=tuple(groups))

    def test_partition_must_be_exact(self):
        pipe = toy_pipeline()
        config = self._config(
            [GroupConfig(stages=("doubler",), model="megakernel", sm_ids=(0,))]
        )
        with pytest.raises(ConfigurationError, match="partition"):
            config.validate(pipe, K20C)

    def test_overlapping_sms_rejected(self):
        pipe = toy_pipeline()
        config = self._config(
            [
                GroupConfig(
                    stages=("doubler", "adder"),
                    model="megakernel",
                    sm_ids=(0, 1),
                ),
                GroupConfig(stages=("sink",), model="megakernel", sm_ids=(1,)),
            ]
        )
        with pytest.raises(ConfigurationError, match="more than one group"):
            config.validate(pipe, K20C)

    def test_sm_out_of_range_rejected(self):
        pipe = toy_pipeline()
        config = self._config(
            [
                GroupConfig(
                    stages=("doubler", "adder", "sink"),
                    model="megakernel",
                    sm_ids=(99,),
                )
            ]
        )
        with pytest.raises(ConfigurationError, match="out of range"):
            config.validate(pipe, K20C)

    def test_describe_mentions_groups(self):
        config = self._config(
            [
                GroupConfig(
                    stages=("doubler", "adder", "sink"),
                    model="megakernel",
                    sm_ids=tuple(range(13)),
                )
            ]
        )
        text = config.describe()
        assert "megakernel" in text
        assert "0-12" in text


class TestSpaceEnumeration:
    def test_partition_count(self):
        assert len(list(contiguous_partitions(3))) == 4  # 2^(n-1)
        assert len(list(contiguous_partitions(5))) == 16

    def test_partitions_cover(self):
        for sizes in contiguous_partitions(4):
            assert sum(sizes) == 4

    def test_coarsest_first(self):
        first = next(contiguous_partitions(4))
        assert first == (4,)

    def test_group_model_candidates(self):
        pipe = toy_pipeline()
        singleton = group_model_candidates(pipe, ("doubler",), K20C)
        assert "megakernel" in singleton
        assert "fine" not in singleton  # single-stage fine == megakernel
        pair = group_model_candidates(pipe, ("adder", "sink"), K20C)
        assert "fine" in pair

    def test_sm_allocations_sum_and_positivity(self):
        for allocation in sm_allocations(13, [3.0, 1.0, 1.0]):
            assert sum(allocation) == 13
            assert all(count >= 1 for count in allocation)

    def test_sm_allocations_proportional_base(self):
        base = sm_allocations(12, [3.0, 1.0])[0]
        assert base == (9, 3)

    def test_sm_allocations_too_many_groups(self):
        assert sm_allocations(2, [1.0, 1.0, 1.0]) == []

    def test_fine_block_maps_feasible_and_maximal(self):
        pipe = toy_pipeline()
        maps = fine_block_maps(pipe, K20C, ("adder", "sink"))
        assert maps, "expected feasible fine maps"
        # Every returned map must itself validate.
        for block_map in maps:
            GroupConfig(
                stages=("adder", "sink"),
                model="fine",
                sm_ids=(0,),
                block_map=block_map,
            )
            config = PipelineConfig(
                groups=(
                    GroupConfig(
                        stages=("doubler",),
                        model="megakernel",
                        sm_ids=(0,),
                    ),
                    GroupConfig(
                        stages=("adder", "sink"),
                        model="fine",
                        sm_ids=tuple(range(1, 13)),
                        block_map=block_map,
                    ),
                )
            )
            config.validate(toy_pipeline(), K20C)

    def test_enumerate_configs_all_valid(self):
        pipe = toy_pipeline()
        count = 0
        for config in enumerate_configs(pipe, K20C):
            config.validate(pipe, K20C)
            count += 1
            if count >= 60:
                break
        assert count == 60

    def test_enumeration_deterministic(self):
        pipe = toy_pipeline()
        first = [c.describe() for _, c in zip(range(25), enumerate_configs(pipe, K20C))]
        second = [c.describe() for _, c in zip(range(25), enumerate_configs(pipe, K20C))]
        assert first == second


class TestOfflineTuner:
    @pytest.fixture
    def tuner(self):
        pipe = toy_pipeline()
        initial = {"doubler": list(range(1, 200))}
        profile, trace = profile_pipeline(pipe, K20C, initial)
        return OfflineTuner(
            pipe,
            K20C,
            trace,
            profile=profile,
            options=TunerOptions(max_configs=40),
        )

    def test_tune_returns_feasible_best(self, tuner):
        report = tuner.tune()
        assert math.isfinite(report.best_time_ms)
        report.best_config.validate(toy_pipeline(), K20C)
        assert report.num_evaluated <= 40

    def test_best_is_minimum_of_completed(self, tuner):
        report = tuner.tune()
        finished = [
            e.time_ms for e in report.evaluated if math.isfinite(e.time_ms)
        ]
        assert report.best_time_ms == min(finished)

    def test_timeout_prunes(self, tuner):
        report = tuner.tune()
        pruned = [
            e
            for e in report.evaluated
            if e.note in ("timeout", "dominated")
        ]
        # The shrinking-deadline scheme (or the dominance cut, which skips
        # candidates that would provably time out) must prune at least one
        # candidate on a pipeline where configs differ substantially.
        assert pruned

    def test_final_config_carries_online_adaptation(self, tuner):
        report = tuner.tune()
        assert report.best_config.online_adaptation is True

    def test_evaluate_respects_deadline(self, tuner):
        from repro.core.tuner.offline import DeadlineExceeded

        config = next(iter(enumerate_configs(toy_pipeline(), K20C)))
        with pytest.raises(DeadlineExceeded):
            tuner.evaluate(config, deadline_cycles=10.0)

    def test_summary_mentions_best(self, tuner):
        report = tuner.tune()
        assert "best" in report.summary()
