"""Execution models on the toy pipeline: correctness across every model,
characteristic invariants, and model-specific behaviours."""

import pytest

from repro.core import (
    FunctionalExecutor,
    GroupConfig,
    ModelNotApplicableError,
    Pipeline,
    PipelineConfig,
    Stage,
    TaskCost,
)
from repro.core.models import (
    CHARACTERISTIC_NAMES,
    CoarsePipelineModel,
    DynamicParallelismModel,
    FinePipelineModel,
    HybridModel,
    KBKModel,
    MegakernelModel,
    RTCModel,
    get_model,
    registered_models,
)
from repro.gpu import GPUDevice, K20C

from .conftest import toy_pipeline


def run_model(model, pipeline=None, initial=None):
    pipeline = pipeline or toy_pipeline()
    initial = initial or {"doubler": list(range(1, 40))}
    device = GPUDevice(K20C)
    return model.run(
        pipeline, device, FunctionalExecutor(pipeline), initial
    )


ALL_MODELS = [
    ("rtc", lambda: RTCModel()),
    ("kbk", lambda: KBKModel()),
    ("kbk-seq", lambda: KBKModel(sequential=True)),
    ("kbk-4lanes", lambda: KBKModel(lanes=4)),
    ("megakernel", lambda: MegakernelModel()),
    ("coarse", lambda: CoarsePipelineModel()),
    ("fine", lambda: FinePipelineModel()),
    ("dp", lambda: DynamicParallelismModel()),
]


class TestAllModelsProduceIdenticalOutputs:
    @pytest.mark.parametrize("name,factory", ALL_MODELS)
    def test_outputs_match_reference(
        self, name, factory, expected_outputs
    ):
        result = run_model(factory())
        assert sorted(result.outputs) == expected_outputs, name

    @pytest.mark.parametrize("name,factory", ALL_MODELS)
    def test_positive_time(self, name, factory):
        result = run_model(factory())
        assert result.time_ms > 0


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory", [lambda: MegakernelModel(), lambda: KBKModel()]
    )
    def test_repeated_runs_identical(self, factory):
        first = run_model(factory())
        second = run_model(factory())
        assert first.time_ms == second.time_ms
        assert first.outputs == second.outputs


class TestRTC:
    def test_single_launch(self):
        result = run_model(RTCModel())
        assert result.device_metrics.kernel_launches == 1

    def test_global_sync_not_applicable(self):
        class Sync(Stage):
            name = "sync"
            requires_global_sync = True

            def execute(self, item, ctx):
                ctx.emit_output(item)

            def cost(self, item):
                return TaskCost(1.0)

        pipe = Pipeline([Sync()])
        with pytest.raises(ModelNotApplicableError):
            run_model(RTCModel(), pipeline=pipe, initial={"sync": [1]})


class TestKBK:
    def test_one_launch_per_wave(self):
        result = run_model(KBKModel())
        assert (
            result.device_metrics.kernel_launches == result.extras["waves"]
        )

    def test_sequential_mode_launches_more(self):
        batched = run_model(KBKModel())
        sequential = run_model(KBKModel(sequential=True))
        assert (
            sequential.device_metrics.kernel_launches
            > batched.device_metrics.kernel_launches
        )

    def test_lanes_reject_zero(self):
        from repro.core.errors import ExecutionError

        with pytest.raises(ExecutionError):
            run_model(KBKModel(lanes=0))

    def test_host_bytes_add_time(self):
        plain = run_model(KBKModel())
        heavy = run_model(KBKModel(host_bytes_per_wave=1 << 20))
        assert heavy.time_ms > plain.time_ms


class TestMegakernel:
    def test_single_persistent_launch(self):
        result = run_model(MegakernelModel())
        assert result.device_metrics.kernel_launches == 1

    def test_blocks_bounded_by_fused_occupancy(self):
        result = run_model(MegakernelModel())
        # Fused toy kernel: max regs 120 -> 2 blocks/SM on K20C.
        assert result.device_metrics.blocks_launched == 2 * K20C.num_sms


class TestCoarse:
    def test_one_launch_per_stage(self):
        result = run_model(CoarsePipelineModel())
        assert result.device_metrics.kernel_launches == 3

    def test_explicit_sm_assignment(self):
        model = CoarsePipelineModel(
            sm_assignment={
                "doubler": range(0, 4),
                "adder": range(4, 10),
                "sink": range(10, 13),
            }
        )
        result = run_model(model)
        assert len(result.outputs) == 39

    def test_more_stages_than_sms_rejected(self):
        from repro.core.errors import ConfigurationError
        from repro.gpu.specs import K20C as spec

        pipe = toy_pipeline()
        device = GPUDevice(spec.with_overrides(num_sms=2))
        with pytest.raises(ConfigurationError):
            CoarsePipelineModel().run(
                pipe,
                device,
                FunctionalExecutor(pipe),
                {"doubler": [1]},
            )


class TestFine:
    def test_default_block_map_fills_sm(self):
        result = run_model(FinePipelineModel())
        assert len(result.outputs) == 39

    def test_explicit_block_map(self):
        result = run_model(
            FinePipelineModel(block_map={"doubler": 1, "adder": 1, "sink": 1})
        )
        # 3 blocks per SM across 13 SMs.
        assert result.device_metrics.blocks_launched == 3 * K20C.num_sms

    def test_infeasible_block_map_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="infeasible"):
            run_model(
                FinePipelineModel(
                    block_map={"doubler": 4, "adder": 4, "sink": 4}
                )
            )


class TestHybrid:
    def test_mixed_group_models(self):
        config = PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler",),
                    model="rtc",
                    sm_ids=tuple(range(0, 5)),
                ),
                GroupConfig(
                    stages=("adder", "sink"),
                    model="fine",
                    sm_ids=tuple(range(5, 13)),
                    block_map={"adder": 1, "sink": 1},
                ),
            )
        )
        result = run_model(HybridModel(config))
        assert len(result.outputs) == 39

    def test_kbk_group_inside_hybrid(self):
        config = PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler", "adder"),
                    model="megakernel",
                    sm_ids=tuple(range(0, 8)),
                ),
                GroupConfig(
                    stages=("sink",),
                    model="kbk",
                    sm_ids=tuple(range(8, 13)),
                ),
            )
        )
        result = run_model(HybridModel(config))
        assert len(result.outputs) == 39

    def test_online_adaptation_runs(self):
        config = PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler",),
                    model="megakernel",
                    sm_ids=tuple(range(0, 6)),
                ),
                GroupConfig(
                    stages=("adder", "sink"),
                    model="megakernel",
                    sm_ids=tuple(range(6, 13)),
                ),
            ),
            online_adaptation=True,
        )
        result = run_model(HybridModel(config))
        assert len(result.outputs) == 39
        assert "online_adaptations" in result.extras


class TestDynamicParallelism:
    def test_child_launch_per_emission(self):
        result = run_model(DynamicParallelismModel())
        # Every non-initial task is one child launch.
        total_tasks = sum(s.tasks for s in result.stage_stats.values())
        assert result.extras["child_launches"] == total_tasks - 39

    def test_dp_slower_than_megakernel(self):
        dp = run_model(DynamicParallelismModel())
        mk = run_model(MegakernelModel())
        assert dp.time_ms > mk.time_ms


class TestRegistryAndCharacteristics:
    def test_all_models_registered(self):
        names = set(registered_models())
        assert {
            "rtc",
            "kbk",
            "megakernel",
            "coarse",
            "fine",
            "hybrid",
            "dynamic_parallelism",
        } <= names

    def test_get_model_unknown_raises(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_model("nonexistent")

    def test_characteristics_complete(self):
        for name, cls in registered_models().items():
            chars = cls.characteristics
            assert chars is not None, name
            row = chars.as_row()
            assert len(row) == len(CHARACTERISTIC_NAMES)
            assert all(1 <= level <= 3 for level in row)

    def test_figure6_key_contrasts(self):
        """The qualitative contrasts Figure 6 highlights."""
        models = registered_models()
        rtc = models["rtc"].characteristics
        kbk = models["kbk"].characteristics
        mega = models["megakernel"].characteristics
        fine = models["fine"].characteristics
        # RTC and Megakernel have poor hardware usage; KBK/fine good.
        assert rtc.hardware_usage < kbk.hardware_usage
        assert mega.hardware_usage < fine.hardware_usage
        # KBK and RTC expose no task parallelism; persistent models do.
        assert kbk.task_parallelism < mega.task_parallelism
        # Fine pipeline is the hardest to configure.
        assert fine.simplicity_control < kbk.simplicity_control
