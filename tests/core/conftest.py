"""Shared toy pipelines for core-framework tests.

These are deliberately tiny synthetic pipelines (integer payloads, fixed
costs) so tests exercise the scheduling machinery without the cost of the
real workloads.
"""

import pytest

from repro.core import OUTPUT, Pipeline, Stage, TaskCost


class DoublerStage(Stage):
    """Recursive stage: doubles until >= 16, then forwards."""

    name = "doubler"
    emits_to = ("doubler", "adder")
    registers_per_thread = 64

    def execute(self, item, ctx):
        value = item * 2
        if value >= 16:
            ctx.emit("adder", value)
        else:
            ctx.emit("doubler", value)

    def cost(self, item):
        return TaskCost(500.0)


class AdderStage(Stage):
    name = "adder"
    emits_to = ("sink",)
    registers_per_thread = 120

    def execute(self, item, ctx):
        ctx.emit("sink", item + 1)

    def cost(self, item):
        return TaskCost(900.0)


class SinkStage(Stage):
    name = "sink"
    emits_to = (OUTPUT,)
    registers_per_thread = 40

    def execute(self, item, ctx):
        ctx.emit_output(item * 10)

    def cost(self, item):
        return TaskCost(300.0)


def toy_pipeline():
    return Pipeline([DoublerStage(), AdderStage(), SinkStage()], name="toy")


def toy_expected(values):
    out = []
    for start in values:
        value = start * 2
        while value < 16:
            value *= 2
        out.append((value + 1) * 10)
    return sorted(out)


@pytest.fixture
def pipeline():
    return toy_pipeline()


@pytest.fixture
def initial_items():
    return {"doubler": list(range(1, 40))}


@pytest.fixture
def expected_outputs():
    return toy_expected(range(1, 40))
