"""The paper's Figure 7: an 8-stage pipeline partitioned into four groups
— fine pipeline, megakernel, kernel-by-kernel, and run-to-completion —
with coarse (SM-exclusive) composition between groups.

Built here on a synthetic 8-stage pipeline and verified end to end, plus a
property-based check that *random* valid hybrid plans all compute the same
result (scheduling never changes semantics).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FunctionalExecutor, GroupConfig, PipelineConfig
from repro.core.models import HybridModel, KBKModel
from repro.gpu import GPUDevice, K20C
from repro.workloads import synthetic


def eight_stage_params():
    return synthetic.SyntheticParams(
        stages=tuple(
            synthetic.SyntheticStageSpec(
                registers_per_thread=regs, mean_cycles=cycles
            )
            for regs, cycles in (
                (48, 1500.0),
                (64, 2500.0),
                (48, 1000.0),
                (96, 4000.0),
                (72, 2000.0),
                (56, 1500.0),
                (40, 1000.0),
                (40, 800.0),
            )
        ),
        num_items=120,
    )


def figure7_config():
    """Fig. 7: stages 1-2 fine (SM1-4), 3-5 megakernel (SM5-7),
    6-7 KBK (SM8-12), 8 RTC (SM13) — translated to 0-based 13 SMs."""
    return PipelineConfig(
        groups=(
            GroupConfig(
                stages=("s0", "s1"),
                model="fine",
                sm_ids=tuple(range(0, 4)),
                block_map={"s0": 1, "s1": 3},
            ),
            GroupConfig(
                stages=("s2", "s3", "s4"),
                model="megakernel",
                sm_ids=tuple(range(4, 7)),
            ),
            GroupConfig(
                stages=("s5", "s6"),
                model="kbk",
                sm_ids=tuple(range(7, 12)),
            ),
            GroupConfig(
                stages=("s7",),
                model="rtc",
                sm_ids=(12,),
            ),
        )
    )


def run(model, params):
    pipeline = synthetic.build_pipeline(params)
    device = GPUDevice(K20C)
    return model.run(
        pipeline,
        device,
        FunctionalExecutor(pipeline),
        synthetic.initial_items(params),
    )


class TestFigure7:
    def test_figure7_plan_validates_and_runs(self):
        params = eight_stage_params()
        result = run(HybridModel(figure7_config()), params)
        reference = run(KBKModel(), params)
        assert len(result.outputs) == len(reference.outputs)
        assert result.time_ms > 0

    def test_figure7_description_names_all_models(self):
        text = figure7_config().describe()
        for token in ("fine", "megakernel", "kbk", "rtc"):
            assert token in text

    def test_groups_keep_exclusive_sms(self):
        params = eight_stage_params()
        pipeline = synthetic.build_pipeline(params)
        device = GPUDevice(K20C)
        tracer = device.enable_tracing()
        HybridModel(figure7_config()).run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            synthetic.initial_items(params),
        )
        config = figure7_config()
        sm_of_group = {}
        for gi, group in enumerate(config.groups):
            for sm in group.sm_ids:
                sm_of_group[sm] = gi
        # Kernel names identify the group; every trace segment must sit on
        # one of its group's SMs.
        stage_group = {
            s: gi
            for gi, g in enumerate(config.groups)
            for s in g.stages
        }
        for segment in tracer.segments:
            name = segment.kernel.split(":")[-1]
            stages = name.split("+")
            groups = {stage_group[s] for s in stages if s in stage_group}
            assert len(groups) == 1
            assert sm_of_group[segment.sm_id] == groups.pop()


def random_plan(draw, pipeline_names, num_sms):
    """Hypothesis helper: a random valid hybrid plan."""
    n = len(pipeline_names)
    # Random contiguous partition.
    cuts = draw(
        st.lists(st.booleans(), min_size=n - 1, max_size=n - 1)
    )
    sizes = []
    current = 1
    for cut in cuts:
        if cut:
            sizes.append(current)
            current = 1
        else:
            current += 1
    sizes.append(current)
    if len(sizes) > num_sms:
        sizes = [n]  # too many groups for the device: collapse
    groups = []
    index = 0
    # Random SM allocation: at least one SM per group.
    remaining = num_sms - len(sizes)
    next_sm = 0
    for gi, size in enumerate(sizes):
        extra = draw(st.integers(0, remaining)) if remaining else 0
        remaining -= extra
        count = 1 + extra
        stages = tuple(pipeline_names[index : index + size])
        index += size
        model = draw(st.sampled_from(["megakernel", "rtc", "kbk"]))
        groups.append(
            GroupConfig(
                stages=stages,
                model=model,
                sm_ids=tuple(range(next_sm, next_sm + count)),
            )
        )
        next_sm += count
    return PipelineConfig(groups=tuple(groups))


class TestRandomPlansProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_any_valid_plan_preserves_semantics(self, data):
        params = synthetic.SyntheticParams.uniform(
            num_stages=4, fan_out=1.5, num_items=25
        )
        pipeline = synthetic.build_pipeline(params)
        plan = random_plan(data.draw, pipeline.stage_names, K20C.num_sms)
        plan.validate(pipeline, K20C)
        result = run(HybridModel(plan), params)
        reference = run(KBKModel(), params)
        assert len(result.outputs) == len(reference.outputs)
        assert result.time_ms > 0
