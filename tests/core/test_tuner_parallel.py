"""Parallel sharded search: determinism, events, dominance soundness."""

import json
import math
import pickle

import pytest

from repro.core.tuner.handoff import SharedBest
from repro.core.tuner.offline import (
    OfflineTuner,
    TunerOptions,
    _evaluate_shard,
    _SearchPayload,
)
from repro.core.tuner.pool import default_workers, stride_shards
from repro.core.tuner.profiler import profile_pipeline
from repro.core.tuner.space import throughput_bound_cycles
from repro.gpu.specs import K20C
from repro.obs.events import EventBus, TunerEvaluation, TunerSearchCompleted

from .conftest import toy_pipeline


class TestStrideShards:
    def test_empty(self):
        assert stride_shards([], 4) == []

    def test_single_worker_is_identity(self):
        items = list(range(7))
        assert stride_shards(items, 1) == [items]

    def test_round_robin_decomposition(self):
        items = list(range(10))
        shards = stride_shards(items, 3)
        assert shards == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]
        assert sorted(x for shard in shards for x in shard) == items

    def test_more_workers_than_items(self):
        shards = stride_shards([1, 2], 8)
        assert shards == [[1], [2]]

    def test_all_shards_nonempty(self):
        for n in range(1, 12):
            for workers in range(1, 6):
                shards = stride_shards(list(range(n)), workers)
                assert all(shards)
                assert len(shards) <= workers

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            stride_shards([1], 0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


def _make_tuner(workers, budget=40, bus=None, dominance=True, prefix=True):
    pipe = toy_pipeline()
    initial = {"doubler": list(range(1, 200))}
    profile, trace = profile_pipeline(pipe, K20C, initial)
    return OfflineTuner(
        pipe,
        K20C,
        trace,
        profile=profile,
        options=TunerOptions(
            max_configs=budget,
            workers=workers,
            dominance_pruning=dominance,
            prefix_frac=0.25 if prefix else None,
        ),
        bus=bus,
    )


class TestWorkerInvariance:
    def test_best_identical_across_worker_counts(self):
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=4).tune()
        assert seq.best_config == par.best_config
        assert seq.best_time_ms == par.best_time_ms

    def test_evaluated_ordering_identical(self):
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=4).tune()
        assert seq.num_evaluated == par.num_evaluated
        assert [e.config.describe() for e in seq.evaluated] == [
            e.config.describe() for e in par.evaluated
        ]
        # Merged records must come back in canonical enumeration order.
        assert [e.index for e in par.evaluated] == list(
            range(par.num_evaluated)
        )

    def test_workers_recorded_on_report(self):
        report = _make_tuner(workers=4).tune()
        assert 1 <= report.workers <= 4

    def test_completed_times_agree_where_both_finished(self):
        """A config that completes under both worker counts must get the
        exact same simulated time (replay is deterministic)."""
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=3).tune()
        for a, b in zip(seq.evaluated, par.evaluated):
            if math.isfinite(a.time_ms) and math.isfinite(b.time_ms):
                assert a.time_ms == b.time_ms


class TestTunerEvents:
    def test_events_emitted_on_bus(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        report = _make_tuner(workers=2, bus=bus).tune()
        evals = [e for e in events if isinstance(e, TunerEvaluation)]
        done = [e for e in events if isinstance(e, TunerSearchCompleted)]
        assert len(evals) == report.num_evaluated
        assert len(done) == 1
        assert done[0].evaluated == report.num_evaluated
        assert done[0].completed == report.num_completed
        assert done[0].best_time_ms == report.best_time_ms
        assert done[0].workers == report.workers

    def test_no_bus_no_crash(self):
        report = _make_tuner(workers=1, bus=None).tune()
        assert math.isfinite(report.best_time_ms)


class TestDominanceSoundness:
    def test_bound_never_exceeds_replayed_time(self):
        """The throughput bound must lower-bound the true replay on every
        candidate (checked exhaustively on a small space) — otherwise the
        dominance cut could discard the optimum."""
        tuner = _make_tuner(workers=1, budget=25)
        checked = 0
        for config in tuner.candidates():
            bound = throughput_bound_cycles(
                tuner.pipeline, tuner.spec, tuner.profile, config
            )
            time_ms = tuner.evaluate(config)  # no deadline: true time
            elapsed_cycles = time_ms * tuner.spec.clock_ghz * 1e6
            assert bound <= elapsed_cycles, config.describe()
            checked += 1
        assert checked == 25

    def test_dominance_preserves_best(self):
        """Enabling the cut must not change the chosen plan or its time."""
        with_cut = _make_tuner(workers=1, dominance=True).tune()
        without = _make_tuner(workers=1, dominance=False).tune()
        assert with_cut.best_config == without.best_config
        assert with_cut.best_time_ms == without.best_time_ms

    def test_provenance_partitions_evaluated(self):
        report = _make_tuner(workers=1).tune()
        assert sum(report.provenance().values()) == report.num_evaluated
        assert report.num_dominated + report.num_timeout + \
            report.num_prefix_eliminated + report.num_invalid + \
            report.num_completed == report.num_evaluated

    def test_dominance_fires_with_racing_enabled(self):
        """Prefix racing must not mask the dominance provenance: on the
        Reyes space the bound still classifies candidates as dominated
        in the canonical report."""
        from repro.harness.runner import tune_workload
        from repro.workloads import reyes

        params = reyes.ReyesParams(num_base_patches=16, split_threshold=48.0)
        report = tune_workload(
            "reyes", K20C, params,
            options=TunerOptions(
                max_configs=80, include_kbk_groups=False, workers=1
            ),
        ).report
        assert report.num_dominated > 0
        assert report.num_prefix_eliminated > 0

    def test_dominance_fires_on_real_workload(self):
        """On the Reyes pipeline (heterogeneous per-stage work) the bound
        actually prunes candidates, and still returns the same plan."""
        from repro.harness.runner import tune_workload
        from repro.workloads import reyes

        params = reyes.ReyesParams(num_base_patches=16, split_threshold=48.0)
        opts = dict(max_configs=80, include_kbk_groups=False, workers=1)
        cut = tune_workload(
            "reyes", K20C, params,
            options=TunerOptions(dominance_pruning=True, **opts),
        ).report
        plain = tune_workload(
            "reyes", K20C, params,
            options=TunerOptions(dominance_pruning=False, **opts),
        ).report
        assert cut.best_config == plain.best_config
        assert cut.best_time_ms == plain.best_time_ms
        assert cut.num_dominated > 0


def _payload_bytes(report):
    return json.dumps(report.canonical_payload(), sort_keys=True)


class TestCanonicalDeterminism:
    """The merged report is a pure function of the candidate space."""

    @pytest.mark.parametrize("prefix", [True, False])
    def test_payload_byte_identical_across_worker_counts(self, prefix):
        reports = [
            _make_tuner(workers=w, prefix=prefix).tune() for w in (1, 2, 4)
        ]
        reference = _payload_bytes(reports[0])
        for report in reports[1:]:
            assert _payload_bytes(report) == reference

    def test_forced_timeout_candidate_is_canonical(self):
        """The toy space forces slow candidates past the deadline; their
        classification must not depend on the worker count."""
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=4).tune()
        assert seq.num_timeout > 0
        assert [e.outcome for e in seq.evaluated] == [
            e.outcome for e in par.evaluated
        ]

    def test_best_identical_across_prefix_on_off(self):
        on = _make_tuner(workers=1, prefix=True).tune()
        off = _make_tuner(workers=1, prefix=False).tune()
        assert on.best_config == off.best_config
        assert on.best_time_ms == off.best_time_ms
        assert on.num_prefix_eliminated > 0
        assert off.num_prefix_eliminated == 0


class TestExhaustiveVsRaced:
    """Acceptance pin: racing never changes the winner on any workload."""

    @pytest.mark.parametrize(
        "name",
        [
            "cfd",
            "face_detection",
            "ldpc",
            "pyramid",
            "rasterization",
            "reyes",
        ],
    )
    def test_raced_best_matches_exhaustive(self, name):
        from repro.harness.runner import get_workload, tune_workload

        params = get_workload(name).quick_params()
        raced = tune_workload(
            name, K20C, params,
            options=TunerOptions(max_configs=24, workers=1),
            cache=None,
        ).report
        exhaustive = tune_workload(
            name, K20C, params,
            options=TunerOptions(max_configs=24, workers=1, prefix_frac=None),
            cache=None,
        ).report
        assert raced.best_config == exhaustive.best_config
        assert raced.best_time_ms == exhaustive.best_time_ms


class TestSharedBest:
    def _slot(self):
        slot = SharedBest.create()
        if slot is None:
            pytest.skip("shared memory unavailable on this platform")
        return slot

    def test_publish_monotone(self):
        slot = self._slot()
        try:
            assert slot.read() == math.inf
            slot.publish(5.0)
            assert slot.read() == 5.0
            slot.publish(7.0)  # worse: ignored
            assert slot.read() == 5.0
            slot.publish(3.0)
            assert slot.read() == 3.0
            slot.publish(-1.0)  # nonsense: ignored
            assert slot.read() == 3.0
        finally:
            slot.release()

    def test_corrupt_slot_reads_inf_and_heals(self):
        slot = self._slot()
        try:
            slot.publish(5.0)
            slot._segment.buf[:] = b"\xff" * len(slot._segment.buf)
            assert slot.read() == math.inf  # checksum mismatch
            slot.publish(4.0)  # any publish heals the slot
            assert slot.read() == 4.0
        finally:
            slot.release()

    def test_pickles_by_name(self):
        slot = self._slot()
        try:
            slot.publish(2.5)
            clone = pickle.loads(pickle.dumps(slot))
            assert clone.read() == 2.5
            clone.publish(1.5)
            assert slot.read() == 1.5
            clone.close()
        finally:
            slot.release()

    def test_released_slot_reads_inf(self):
        slot = self._slot()
        name = slot.name
        slot.publish(2.0)
        slot.release()
        orphan = SharedBest(name)
        assert orphan.read() == math.inf

    def test_corrupted_shared_value_falls_back_to_local(self):
        """A shard racing against a corrupted shared slot must produce
        exactly the records of a shard with no shared bound at all."""
        tuner = _make_tuner(workers=1, budget=12)
        candidates = list(enumerate(tuner.candidates()))
        base = _SearchPayload(
            pipeline=tuner.pipeline,
            spec=tuner.spec,
            trace=tuner.trace,
            profile=tuner.profile,
            options=tuner.options,
        )
        clean = _evaluate_shard(base, candidates)
        slot = self._slot()
        try:
            slot._segment.buf[:] = b"\xff" * len(slot._segment.buf)
            corrupted = _SearchPayload(
                pipeline=tuner.pipeline,
                spec=tuner.spec,
                trace=tuner.trace,
                profile=tuner.profile,
                options=tuner.options,
                shared_best=slot,
            )
            raced = _evaluate_shard(corrupted, candidates)
        finally:
            slot.release()
        assert [
            (r.index, r.time_ms, r.note) for r in clean.records
        ] == [(r.index, r.time_ms, r.note) for r in raced.records]
