"""Parallel sharded search: determinism, events, dominance soundness."""

import math

import pytest

from repro.core.tuner.offline import OfflineTuner, TunerOptions
from repro.core.tuner.pool import default_workers, stride_shards
from repro.core.tuner.profiler import profile_pipeline
from repro.core.tuner.space import throughput_bound_cycles
from repro.gpu.specs import K20C
from repro.obs.events import EventBus, TunerEvaluation, TunerSearchCompleted

from .conftest import toy_pipeline


class TestStrideShards:
    def test_empty(self):
        assert stride_shards([], 4) == []

    def test_single_worker_is_identity(self):
        items = list(range(7))
        assert stride_shards(items, 1) == [items]

    def test_round_robin_decomposition(self):
        items = list(range(10))
        shards = stride_shards(items, 3)
        assert shards == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]
        assert sorted(x for shard in shards for x in shard) == items

    def test_more_workers_than_items(self):
        shards = stride_shards([1, 2], 8)
        assert shards == [[1], [2]]

    def test_all_shards_nonempty(self):
        for n in range(1, 12):
            for workers in range(1, 6):
                shards = stride_shards(list(range(n)), workers)
                assert all(shards)
                assert len(shards) <= workers

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            stride_shards([1], 0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


def _make_tuner(workers, budget=40, bus=None, dominance=True):
    pipe = toy_pipeline()
    initial = {"doubler": list(range(1, 200))}
    profile, trace = profile_pipeline(pipe, K20C, initial)
    return OfflineTuner(
        pipe,
        K20C,
        trace,
        profile=profile,
        options=TunerOptions(
            max_configs=budget, workers=workers, dominance_pruning=dominance
        ),
        bus=bus,
    )


class TestWorkerInvariance:
    def test_best_identical_across_worker_counts(self):
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=4).tune()
        assert seq.best_config == par.best_config
        assert seq.best_time_ms == par.best_time_ms

    def test_evaluated_ordering_identical(self):
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=4).tune()
        assert seq.num_evaluated == par.num_evaluated
        assert [e.config.describe() for e in seq.evaluated] == [
            e.config.describe() for e in par.evaluated
        ]
        # Merged records must come back in canonical enumeration order.
        assert [e.index for e in par.evaluated] == list(
            range(par.num_evaluated)
        )

    def test_workers_recorded_on_report(self):
        report = _make_tuner(workers=4).tune()
        assert 1 <= report.workers <= 4

    def test_completed_times_agree_where_both_finished(self):
        """A config that completes under both worker counts must get the
        exact same simulated time (replay is deterministic)."""
        seq = _make_tuner(workers=1).tune()
        par = _make_tuner(workers=3).tune()
        for a, b in zip(seq.evaluated, par.evaluated):
            if math.isfinite(a.time_ms) and math.isfinite(b.time_ms):
                assert a.time_ms == b.time_ms


class TestTunerEvents:
    def test_events_emitted_on_bus(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        report = _make_tuner(workers=2, bus=bus).tune()
        evals = [e for e in events if isinstance(e, TunerEvaluation)]
        done = [e for e in events if isinstance(e, TunerSearchCompleted)]
        assert len(evals) == report.num_evaluated
        assert len(done) == 1
        assert done[0].evaluated == report.num_evaluated
        assert done[0].completed == report.num_completed
        assert done[0].best_time_ms == report.best_time_ms
        assert done[0].workers == report.workers

    def test_no_bus_no_crash(self):
        report = _make_tuner(workers=1, bus=None).tune()
        assert math.isfinite(report.best_time_ms)


class TestDominanceSoundness:
    def test_bound_never_exceeds_replayed_time(self):
        """The throughput bound must lower-bound the true replay on every
        candidate (checked exhaustively on a small space) — otherwise the
        dominance cut could discard the optimum."""
        tuner = _make_tuner(workers=1, budget=25)
        checked = 0
        for config in tuner.candidates():
            bound = throughput_bound_cycles(
                tuner.pipeline, tuner.spec, tuner.profile, config
            )
            time_ms = tuner.evaluate(config)  # no deadline: true time
            elapsed_cycles = time_ms * tuner.spec.clock_ghz * 1e6
            assert bound <= elapsed_cycles, config.describe()
            checked += 1
        assert checked == 25

    def test_dominance_preserves_best(self):
        """Enabling the cut must not change the chosen plan or its time."""
        with_cut = _make_tuner(workers=1, dominance=True).tune()
        without = _make_tuner(workers=1, dominance=False).tune()
        assert with_cut.best_config == without.best_config
        assert with_cut.best_time_ms == without.best_time_ms

    def test_dominated_counted_separately_from_timeout(self):
        report = _make_tuner(workers=1).tune()
        assert report.num_dominated + report.num_timeout + \
            report.num_invalid + report.num_completed == report.num_evaluated

    def test_dominance_fires_on_real_workload(self):
        """On the Reyes pipeline (heterogeneous per-stage work) the bound
        actually prunes candidates, and still returns the same plan."""
        from repro.harness.runner import tune_workload
        from repro.workloads import reyes

        params = reyes.ReyesParams(num_base_patches=16, split_threshold=48.0)
        opts = dict(max_configs=80, include_kbk_groups=False, workers=1)
        cut = tune_workload(
            "reyes", K20C, params,
            options=TunerOptions(dominance_pruning=True, **opts),
        ).report
        plain = tune_workload(
            "reyes", K20C, params,
            options=TunerOptions(dominance_pruning=False, **opts),
        ).report
        assert cut.best_config == plain.best_config
        assert cut.best_time_ms == plain.best_time_ms
        assert cut.num_dominated > 0
