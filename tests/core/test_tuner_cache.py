"""Persistent profile cache: hits, misses, invalidation, fingerprints."""

import json
import math
import os

from repro.core.tuner import cache as cache_mod
from repro.core.tuner.cache import (
    CACHE_SCHEMA_VERSION,
    CachedEvaluation,
    ProfileCache,
    config_fingerprint,
    pipeline_fingerprint,
    spec_fingerprint,
    trace_fingerprint,
)
from repro.core.tuner.offline import OfflineTuner, TunerOptions
from repro.core.tuner.profiler import profile_pipeline
from repro.gpu.specs import K20C, get_spec

from .conftest import toy_pipeline


def _tuner(cache_dir, workers=1, budget=25):
    pipe = toy_pipeline()
    initial = {"doubler": list(range(1, 200))}
    profile, trace = profile_pipeline(pipe, K20C, initial)
    return OfflineTuner(
        pipe,
        K20C,
        trace,
        profile=profile,
        options=TunerOptions(
            max_configs=budget, workers=workers, cache_dir=str(cache_dir)
        ),
    )


class TestSearchWithCache:
    def test_cold_then_warm(self, tmp_path):
        cold = _tuner(tmp_path / "c").tune()
        assert cold.cache_hits == 0
        # Prefix rungs re-evaluate promoted candidates on longer traces,
        # so cold misses can exceed the number of reported candidates.
        assert cold.cache_misses >= cold.num_evaluated - cold.num_dominated
        assert cold.cache_stats.stores == cold.cache_misses

        # Cached searches pin deadlines to the deterministic shard-local
        # schedule, so a warm rerun looks up exactly the cells the cold
        # run stored and misses nothing.
        warm = _tuner(tmp_path / "c").tune()
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert all(
            e.cached for e in warm.evaluated if e.outcome == "completed"
        )
        assert warm.best_config == cold.best_config
        assert warm.best_time_ms == cold.best_time_ms
        assert warm.canonical_payload() == cold.canonical_payload()

    def test_cache_disabled_reports_zero_traffic(self, tmp_path):
        pipe = toy_pipeline()
        profile, trace = profile_pipeline(
            pipe, K20C, {"doubler": list(range(1, 100))}
        )
        report = OfflineTuner(
            pipe, K20C, trace, profile=profile,
            options=TunerOptions(max_configs=10),
        ).tune()
        assert report.cache_hits == 0 and report.cache_misses == 0
        assert not any(e.cached for e in report.evaluated)

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        first = _tuner(tmp_path / "c").tune()
        assert first.cache_misses > 0
        monkeypatch.setattr(
            cache_mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        rerun = _tuner(tmp_path / "c").tune()
        assert rerun.cache_hits == 0  # every old entry misses cleanly
        assert rerun.best_config == first.best_config

    def test_different_workload_different_space(self, tmp_path):
        """A changed trace must land in a different space directory."""
        pipe = toy_pipeline()
        _, trace_a = profile_pipeline(pipe, K20C, {"doubler": [1, 2, 3]})
        _, trace_b = profile_pipeline(pipe, K20C, {"doubler": [4, 5, 6]})
        cache_a = ProfileCache.open(str(tmp_path), pipe, K20C, trace_a)
        cache_b = ProfileCache.open(str(tmp_path), pipe, K20C, trace_b)
        assert cache_a.space_dir != cache_b.space_dir


class TestCacheSemantics:
    def _cache(self, tmp_path):
        pipe = toy_pipeline()
        _, trace = profile_pipeline(pipe, K20C, {"doubler": [1, 2, 3]})
        tuner_opts = TunerOptions(max_configs=1)
        config = OfflineTuner(
            pipe, K20C, trace, options=tuner_opts
        ).candidates()[0]
        return ProfileCache.open(str(tmp_path), pipe, K20C, trace), config

    def test_roundtrip_completed(self, tmp_path):
        cache, config = self._cache(tmp_path)
        assert cache.lookup(config) is None
        cache.store(
            config, CachedEvaluation(status="completed", time_ms=1.25)
        )
        entry = cache.lookup(config)
        assert entry is not None
        assert entry.status == "completed" and entry.time_ms == 1.25

    def test_timeout_entry_deadline_semantics(self, tmp_path):
        cache, config = self._cache(tmp_path)
        cache.store(
            config,
            CachedEvaluation(status="timeout", exceeded_cycles=100.0),
        )
        # Stricter (or equal) deadline: the run would provably time out
        # again, so the entry is a hit.
        hit = cache.lookup(config, deadline_cycles=50.0)
        assert hit is not None and hit.status == "timeout"
        assert cache.lookup(config, deadline_cycles=100.0) is not None
        # Looser deadline: the run might finish now; must re-evaluate.
        assert cache.lookup(config, deadline_cycles=200.0) is None
        assert cache.lookup(config, deadline_cycles=math.inf) is None

    def test_invalid_entry_always_hits(self, tmp_path):
        cache, config = self._cache(tmp_path)
        cache.store(
            config, CachedEvaluation(status="invalid", note="invalid: nope")
        )
        entry = cache.lookup(config, deadline_cycles=1.0)
        assert entry is not None and entry.status == "invalid"

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache, config = self._cache(tmp_path)
        cache.store(config, CachedEvaluation(status="completed", time_ms=2.0))
        with open(cache.path_for(config), "w", encoding="utf-8") as fh:
            fh.write("{not json")
        # The in-process memory layer still remembers the good entry ...
        assert cache.lookup(config) is not None
        # ... but a fresh cache object (a new process) must treat the
        # corrupt file as a clean miss.
        fresh, _ = self._cache(tmp_path)
        assert fresh.lookup(config) is None

    def test_unknown_status_is_a_miss(self, tmp_path):
        cache, config = self._cache(tmp_path)
        os.makedirs(cache.space_dir, exist_ok=True)
        with open(cache.path_for(config), "w", encoding="utf-8") as fh:
            json.dump(
                {"schema": CACHE_SCHEMA_VERSION, "status": "quantum"}, fh
            )
        assert cache.lookup(config) is None

    def test_entry_count_and_clear(self, tmp_path):
        cache, config = self._cache(tmp_path)
        assert cache.entry_count() == 0
        cache.store(config, CachedEvaluation(status="completed", time_ms=1.0))
        assert cache.entry_count() == 1
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.lookup(config) is None


class TestFingerprints:
    def test_config_fingerprint_distinguishes(self):
        pipe = toy_pipeline()
        configs = OfflineTuner(
            pipe, K20C,
            profile_pipeline(pipe, K20C, {"doubler": [1]})[1],
            options=TunerOptions(max_configs=10),
        ).candidates()
        keys = {config_fingerprint(c) for c in configs}
        assert len(keys) == len(configs)

    def test_spec_fingerprint_distinguishes_devices(self):
        assert spec_fingerprint(K20C) != spec_fingerprint(
            get_spec("GTX1080")
        )
        assert spec_fingerprint(K20C) == spec_fingerprint(K20C)

    def test_pipeline_fingerprint_stable(self):
        assert pipeline_fingerprint(toy_pipeline()) == pipeline_fingerprint(
            toy_pipeline()
        )

    def test_trace_fingerprint_tracks_workload(self):
        pipe = toy_pipeline()
        _, trace_a = profile_pipeline(pipe, K20C, {"doubler": [1, 2]})
        _, trace_b = profile_pipeline(pipe, K20C, {"doubler": [1, 2]})
        _, trace_c = profile_pipeline(pipe, K20C, {"doubler": [1, 2, 3]})
        assert trace_fingerprint(trace_a) == trace_fingerprint(trace_b)
        assert trace_fingerprint(trace_a) != trace_fingerprint(trace_c)


class TestPerRunDeltas:
    def test_counters_stay_per_run_under_shared_reuse(self, tmp_path):
        """Regression: shared cache objects outlive a search, so reports
        must carry per-run counter *deltas*, never lifetime totals —
        repeated searches in one process would otherwise inflate every
        later report's traffic (the TraceCache bug PR 7 fixed)."""
        cold = _tuner(tmp_path / "c").tune()
        warm_one = _tuner(tmp_path / "c").tune()
        warm_two = _tuner(tmp_path / "c").tune()
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        # Identical warm traffic on every rerun — no accumulation.
        assert warm_one.cache_hits == warm_two.cache_hits
        assert warm_one.cache_hits == cold.cache_misses
        assert warm_one.cache_misses == warm_two.cache_misses == 0
        assert warm_two.cache_stats.stores == 0
