"""Execution-runner internals: persistent groups, KBK lanes/groups,
locality adjustment, online adaptation."""

import pytest

from repro.core import (
    FunctionalExecutor,
    GroupConfig,
    Pipeline,
    PipelineConfig,
    Stage,
    TaskCost,
)
from repro.core.errors import ConfigurationError
from repro.core.exec.kbk import run_kbk
from repro.core.exec.persistent import PersistentGroupRunner, locality_adjusted
from repro.core.models.hybrid import HybridEngine, OnlineAdapter
from repro.core.runcontext import RunContext
from repro.gpu import GPUDevice, K20C

from .conftest import AdderStage, DoublerStage, SinkStage, toy_pipeline


def make_engine(config, initial=None, pipeline=None):
    pipeline = pipeline or toy_pipeline()
    device = GPUDevice(K20C)
    engine = HybridEngine(
        pipeline, device, FunctionalExecutor(pipeline), config
    )
    return engine, initial or {"doubler": list(range(1, 30))}


class TestLocalityAdjusted:
    def test_same_sm_discounts_memory_fraction(self):
        cost = TaskCost(1000.0, mem_fraction=0.6)
        local = locality_adjusted(cost, producer_sm=3, current_sm=3, l1_bonus=0.25)
        remote = locality_adjusted(cost, producer_sm=3, current_sm=4, l1_bonus=0.25)
        assert local == pytest.approx(1000.0 * (1 - 0.6 * 0.25))
        assert remote == 1000.0

    def test_host_produced_items_get_no_discount(self):
        cost = TaskCost(1000.0, mem_fraction=0.6)
        assert locality_adjusted(cost, None, 3, 0.25) == 1000.0

    def test_zero_mem_fraction_unaffected(self):
        cost = TaskCost(1000.0, mem_fraction=0.0)
        assert locality_adjusted(cost, 3, 3, 0.25) == 1000.0


class TestPersistentGroupRunner:
    def test_rejects_kbk_groups(self):
        pipeline = toy_pipeline()
        ctx = RunContext(pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline))
        with pytest.raises(ConfigurationError):
            PersistentGroupRunner(
                ctx,
                GroupConfig(
                    stages=("doubler",), model="kbk", sm_ids=(0,)
                ),
            )

    def test_fused_kernel_includes_scheduler_code(self):
        pipeline = toy_pipeline()
        ctx = RunContext(pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline))
        runner = PersistentGroupRunner(
            ctx,
            GroupConfig(
                stages=("doubler", "adder", "sink"),
                model="megakernel",
                sm_ids=(0,),
            ),
        )
        fused = runner.fused_kernel()
        stage_code = sum(
            pipeline.stage(s).code_bytes
            for s in ("doubler", "adder", "sink")
        )
        assert fused.code_bytes == stage_code + runner.SCHEDULER_CODE_BYTES

    def test_single_stage_group_has_no_scheduler_overhead(self):
        pipeline = toy_pipeline()
        ctx = RunContext(pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline))
        runner = PersistentGroupRunner(
            ctx,
            GroupConfig(stages=("sink",), model="megakernel", sm_ids=(0,)),
        )
        assert (
            runner.fused_kernel().code_bytes
            == pipeline.stage("sink").code_bytes
        )

    def test_blocks_stay_on_assigned_sms(self):
        config = PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler", "adder", "sink"),
                    model="megakernel",
                    sm_ids=(2, 5, 9),
                ),
            )
        )
        engine, initial = make_engine(config)
        tracer = engine.device.enable_tracing()
        engine.run(initial)
        assert {seg.sm_id for seg in tracer.segments} <= {2, 5, 9}

    def test_fine_blocks_follow_block_map(self):
        config = PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler", "adder", "sink"),
                    model="fine",
                    sm_ids=(0, 1),
                    block_map={"doubler": 1, "adder": 1, "sink": 1},
                ),
            )
        )
        engine, initial = make_engine(config)
        result = engine.run(initial)
        # 3 stages x 1 block x 2 SMs.
        assert result.device_metrics.blocks_launched == 6


class TestKBKLanes:
    def test_sequential_lane_processes_items_in_turn(self):
        pipeline = toy_pipeline()
        device = GPUDevice(K20C)
        outputs, stats, waves = run_kbk(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            {"doubler": [1, 9]},
            sequential=True,
        )
        device.finalize_metrics()
        assert len(outputs) == 2
        # Item 1 recurses (1->2->4->8->16): 4 doubler waves + adder + sink;
        # item 9 needs 1 doubler wave + adder + sink.
        assert waves == 6 + 3

    def test_batched_mode_consolidates_waves(self):
        pipeline = toy_pipeline()
        device = GPUDevice(K20C)
        _outputs, _stats, waves_batched = run_kbk(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            {"doubler": [1, 9]},
            sequential=False,
        )
        assert waves_batched < 9

    def test_stats_count_every_task(self):
        pipeline = toy_pipeline()
        device = GPUDevice(K20C)
        _outputs, stats, _waves = run_kbk(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            {"doubler": [1]},
        )
        assert stats["doubler"].tasks == 4
        assert stats["adder"].tasks == 1
        assert stats["sink"].tasks == 1


class TestOnlineAdapter:
    def _imbalanced_config(self, adapt):
        return PipelineConfig(
            groups=(
                GroupConfig(
                    stages=("doubler",),
                    model="megakernel",
                    sm_ids=tuple(range(0, 10)),
                ),
                GroupConfig(
                    stages=("adder", "sink"),
                    model="megakernel",
                    sm_ids=(10, 11, 12),
                ),
            ),
            online_adaptation=adapt,
        )

    def test_adaptation_triggers_and_helps(self):
        # Enough items that the downstream group still has backlog when the
        # doubler group's blocks exit (the host reaction takes ~30 us).
        initial = {"doubler": [1] * 4000}
        static_engine, _ = make_engine(self._imbalanced_config(False))
        static = static_engine.run(initial)
        adaptive_engine, _ = make_engine(self._imbalanced_config(True))
        adaptive = adaptive_engine.run(initial)
        assert adaptive.extras["online_adaptations"] >= 1
        # At this small scale the extra launch can cost as much as it
        # recovers; it must at least stay near-neutral (the clear win case
        # is exercised in benchmarks/bench_ablations.py on Reyes).
        assert adaptive.time_ms <= static.time_ms * 1.15

    def test_no_adaptation_without_backlog(self):
        # Tiny workload drains before any group exits with backlog left.
        engine, _ = make_engine(self._imbalanced_config(True))
        result = engine.run({"doubler": [9]})
        assert result.extras["online_adaptations"] == 0
