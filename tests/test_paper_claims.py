"""Mechanistic claims from the paper's Section 8, verified exactly.

These tests pin the architectural arithmetic the paper reports — register
budgets to blocks-per-SM, resident block counts, kernel launch counts —
independent of timing calibration.
"""

import pytest

from repro.core.executor import FunctionalExecutor
from repro.core.models import HybridModel, KBKModel, MegakernelModel
from repro.core.exec.persistent import PersistentGroupRunner
from repro.core.config import GroupConfig
from repro.core.runcontext import RunContext
from repro.gpu import GPUDevice, K20C
from repro.gpu.occupancy import max_blocks_per_sm
from repro.workloads.registry import get_workload


def fused_blocks_per_sm(workload_name):
    spec = get_workload(workload_name)
    params = spec.quick_params()
    pipeline = spec.build_pipeline(params)
    ctx = RunContext(pipeline, GPUDevice(K20C), FunctionalExecutor(pipeline))
    runner = PersistentGroupRunner(
        ctx,
        GroupConfig(
            stages=tuple(pipeline.stage_names),
            model="megakernel",
            sm_ids=tuple(range(K20C.num_sms)),
        ),
    )
    return max_blocks_per_sm(runner.fused_kernel(), K20C)


class TestReyesClaims:
    """Section 8.3: 'there are 35 blocks launched concurrently in VersaPipe,
    while the count for Megakernel is only 13.'"""

    def test_megakernel_one_block_per_sm(self):
        assert fused_blocks_per_sm("reyes") == 1

    def test_megakernel_13_blocks_total(self):
        spec = get_workload("reyes")
        params = spec.quick_params()
        pipeline = spec.build_pipeline(params)
        device = GPUDevice(K20C)
        result = MegakernelModel().run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            spec.initial_items(params),
        )
        assert result.device_metrics.blocks_launched == 13

    def test_versapipe_about_35_blocks(self):
        spec = get_workload("reyes")
        params = spec.quick_params()
        pipeline = spec.build_pipeline(params)
        config = spec.versapipe_config(pipeline, K20C, params)
        device = GPUDevice(K20C)
        result = HybridModel(config).run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            spec.initial_items(params),
        )
        # Paper says 35; our resource-consistent configuration gives
        # 10 SMs x (1 split + 1 dice) + 3 SMs x 4 shade = 32.
        assert 30 <= result.device_metrics.blocks_launched <= 36

    def test_shade_four_blocks_per_sm(self):
        spec = get_workload("reyes")
        pipeline = spec.build_pipeline(spec.quick_params())
        assert max_blocks_per_sm(pipeline.stage("shade").kernel_spec(), K20C) == 4


class TestFaceDetectionClaims:
    """Section 8.3: megakernel 87 regs -> 2 blocks/SM; per-stage kernels
    56/69/56/61/37 regs -> 4/3/4/4/6 blocks/SM."""

    def test_megakernel_two_blocks(self):
        assert fused_blocks_per_sm("face_detection") == 2

    @pytest.mark.parametrize(
        "stage,expected",
        [
            ("grayscale", 4),
            ("histeq", 3),
            ("resize", 4),
            ("feature", 4),
            ("scanning", 6),
        ],
    )
    def test_per_stage_blocks(self, stage, expected):
        spec = get_workload("face_detection")
        pipeline = spec.build_pipeline(spec.quick_params())
        assert (
            max_blocks_per_sm(pipeline.stage(stage).kernel_spec(), K20C)
            == expected
        )


class TestPyramidClaims:
    """Section 8.3: 'VersaPipe maintains a total of 60 blocks, while
    Megakernel only 39'; histeq/resize max 3 and 4 blocks alone but 2+2
    co-resident under fine pipeline."""

    def test_megakernel_39_blocks(self):
        assert fused_blocks_per_sm("pyramid") == 3  # 3 x 13 SMs = 39

    def test_versapipe_60_blocks(self):
        spec = get_workload("pyramid")
        params = spec.default_params()
        pipeline = spec.build_pipeline(params)
        config = spec.versapipe_config(pipeline, K20C, params)
        total = 0
        for group in config.groups:
            if group.model == "fine":
                total += sum(group.block_map.values()) * len(group.sm_ids)
            else:
                fused = pipeline.stage(group.stages[0]).kernel_spec()
                total += max_blocks_per_sm(fused, K20C) * len(group.sm_ids)
        assert total == 60

    def test_histeq_resize_standalone_occupancy(self):
        spec = get_workload("pyramid")
        pipeline = spec.build_pipeline(spec.quick_params())
        assert max_blocks_per_sm(pipeline.stage("histeq").kernel_spec(), K20C) == 3
        assert max_blocks_per_sm(pipeline.stage("resize").kernel_spec(), K20C) == 4


class TestCFDClaims:
    """Section 8.3: KBK needs 14,000 launches at paper scale; VersaPipe
    reduces the launch count to 3; per-stage blocks 4/2/3."""

    def test_kbk_launch_formula(self):
        from repro.workloads.cfd import CFDParams

        assert CFDParams(outer_iterations=2000).kbk_launches == 14000

    def test_kbk_measured_launches(self):
        from repro.workloads.cfd import CFDParams

        spec = get_workload("cfd")
        params = CFDParams(num_chunks=2, chunk_cells=64, outer_iterations=5)
        pipeline = spec.build_pipeline(params)
        device = GPUDevice(K20C)
        result = KBKModel().run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            spec.initial_items(params),
        )
        assert result.device_metrics.kernel_launches == params.kbk_launches

    def test_versapipe_three_launches(self):
        from repro.workloads.cfd import CFDParams

        spec = get_workload("cfd")
        params = CFDParams(num_chunks=2, chunk_cells=64, outer_iterations=5)
        pipeline = spec.build_pipeline(params)
        config = spec.versapipe_config(pipeline, K20C, params)
        device = GPUDevice(K20C)
        result = HybridModel(config).run(
            pipeline,
            device,
            FunctionalExecutor(pipeline),
            spec.initial_items(params),
        )
        assert result.device_metrics.kernel_launches == 3

    @pytest.mark.parametrize(
        "stage,expected",
        [("step_factor", 4), ("flux", 2), ("time_step", 3)],
    )
    def test_per_stage_blocks(self, stage, expected):
        spec = get_workload("cfd")
        pipeline = spec.build_pipeline(spec.quick_params())
        assert (
            max_blocks_per_sm(pipeline.stage(stage).kernel_spec(), K20C)
            == expected
        )


class TestLDPCClaims:
    """Section 8.3: megakernel 4 blocks/SM (52 total); C2V/V2C 5 blocks."""

    def test_megakernel_52_blocks(self):
        assert fused_blocks_per_sm("ldpc") * K20C.num_sms == 52

    @pytest.mark.parametrize(
        "stage,expected",
        [("initialize", 4), ("c2v", 5), ("v2c", 5), ("probvar", 4)],
    )
    def test_per_stage_blocks(self, stage, expected):
        spec = get_workload("ldpc")
        pipeline = spec.build_pipeline(spec.quick_params())
        assert (
            max_blocks_per_sm(pipeline.stage(stage).kernel_spec(), K20C)
            == expected
        )
