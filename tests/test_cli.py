"""CLI smoke tests (direct main() invocation, captured stdout)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestList:
    def test_lists_all_workloads(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in ("pyramid", "face_detection", "reyes", "cfd",
                     "rasterization", "ldpc"):
            assert name in out
        assert "K20c" in out and "GTX1080" in out


class TestRun:
    def test_run_versapipe_quick(self, capsys):
        code, out = run_cli(capsys, "run", "reyes")
        assert code == 0
        assert "ms simulated" in out
        assert "config:" in out

    def test_run_specific_model_and_device(self, capsys):
        code, out = run_cli(
            capsys, "run", "ldpc", "--model", "megakernel",
            "--device", "GTX1080",
        )
        assert code == 0
        assert "GTX1080" in out

    def test_unknown_workload_raises(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "run", "tetris")


class TestCompare:
    def test_compare_prints_speedups(self, capsys):
        code, out = run_cli(capsys, "compare", "rasterization")
        assert code == 0
        assert "baseline" in out
        assert "speedup over baseline" in out


class TestTune:
    def test_tune_quick(self, capsys):
        code, out = run_cli(capsys, "tune", "ldpc", "--budget", "20")
        assert code == 0
        assert "profiled" in out
        assert "best" in out


class TestTimeline:
    def test_timeline_renders_gantt(self, capsys):
        code, out = run_cli(
            capsys, "timeline", "reyes", "--model", "megakernel"
        )
        assert code == 0
        assert "SM00 |" in out
        assert "legend:" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_model_choice_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "reyes", "--model", "warpdrive"])
