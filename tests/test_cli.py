"""CLI smoke tests (direct main() invocation, captured stdout)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestList:
    def test_lists_all_workloads(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in ("pyramid", "face_detection", "reyes", "cfd",
                     "rasterization", "ldpc"):
            assert name in out
        assert "K20c" in out and "GTX1080" in out


class TestRun:
    def test_run_versapipe_quick(self, capsys):
        code, out = run_cli(capsys, "run", "reyes")
        assert code == 0
        assert "ms simulated" in out
        assert "config:" in out

    def test_run_specific_model_and_device(self, capsys):
        code, out = run_cli(
            capsys, "run", "ldpc", "--model", "megakernel",
            "--device", "GTX1080",
        )
        assert code == 0
        assert "GTX1080" in out

    def test_unknown_workload_raises(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "run", "tetris")

    def test_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys, "run", "reyes", "--model", "versapipe",
            "--trace-out", str(path),
        )
        assert code == 0
        assert f"wrote trace: {path}" in out
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "C" in phases and "M" in phases

    def test_report_json_writes_run_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code, out = run_cli(
            capsys, "run", "reyes", "--report-json", str(path)
        )
        assert code == 0
        report = json.loads(path.read_text())
        assert report["label"] == "reyes/versapipe/K20c"
        assert report["counters"]["queue_pushes"] > 0
        assert report["sm_activity"]
        assert report["stage_latency"]

    def test_no_flags_no_observer_output(self, capsys):
        _code, out = run_cli(capsys, "run", "reyes")
        assert "wrote" not in out


class TestCompare:
    def test_compare_prints_speedups(self, capsys):
        code, out = run_cli(capsys, "compare", "rasterization")
        assert code == 0
        assert "baseline" in out
        assert "speedup over baseline" in out

    def test_compare_report_json_per_model_and_aggregate(
        self, capsys, tmp_path
    ):
        path = tmp_path / "cmp.json"
        code, _out = run_cli(
            capsys, "compare", "pyramid", "--report-json", str(path)
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["workload"] == "pyramid"
        assert set(payload["models"]) == {
            "baseline", "megakernel", "versapipe"
        }
        assert payload["aggregate"]["runs"] == 3

    def test_compare_trace_out_writes_per_model_files(
        self, capsys, tmp_path
    ):
        path = tmp_path / "cmp.json"
        code, out = run_cli(
            capsys, "compare", "pyramid", "--trace-out", str(path)
        )
        assert code == 0
        for model in ("baseline", "megakernel", "versapipe"):
            sibling = tmp_path / f"cmp.{model}.json"
            assert sibling.exists(), model
            assert json.loads(sibling.read_text())["traceEvents"]


class TestStats:
    def test_stats_prints_report_sections(self, capsys):
        code, out = run_cli(capsys, "stats", "reyes")
        assert code == 0
        assert "per-stage task latency" in out
        assert "per-SM activity" in out
        assert "p50" in out and "p99" in out
        assert "busy" in out and "starved" in out

    def test_stats_with_model_flag(self, capsys):
        code, out = run_cli(
            capsys, "stats", "ldpc", "--model", "megakernel"
        )
        assert code == 0
        assert "run: ldpc/megakernel/K20c" in out


class TestTune:
    def test_tune_quick(self, capsys):
        code, out = run_cli(capsys, "tune", "ldpc", "--budget", "20")
        assert code == 0
        assert "profiled" in out
        assert "best" in out

    def test_tune_workers_and_cache_warm_rerun(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "tuner-cache")
        argv = (
            "tune", "ldpc", "--budget", "12",
            "--workers", "2", "--cache-dir", cache_dir,
        )
        code, cold = run_cli(capsys, *argv)
        assert code == 0
        assert "cache: 0 hits" in cold
        assert "2 workers" in cold

        code, warm = run_cli(capsys, *argv)
        assert code == 0
        assert "/ 0 misses" in warm
        assert "cache: 0 hits" not in warm  # the rerun must hit

    def test_tune_report_json(self, capsys, tmp_path):
        path = tmp_path / "tuner.json"
        code, out = run_cli(
            capsys, "tune", "ldpc", "--budget", "12",
            "--workers", "1", "--report-json", str(path),
        )
        assert code == 0
        assert f"wrote report: {path}" in out
        payload = json.loads(path.read_text())
        assert payload["label"] == "ldpc/K20c"
        assert payload["evaluated"] == 12
        assert payload["completed"] + payload["pruned"] == 12
        assert payload["best_time_ms"] > 0
        assert payload["best_config"]

    def test_tune_no_dominance_flag(self, capsys):
        code, out = run_cli(
            capsys, "tune", "ldpc", "--budget", "12", "--no-dominance"
        )
        assert code == 0
        assert "0 dominated" in out


class TestTimeline:
    def test_timeline_renders_gantt(self, capsys):
        code, out = run_cli(
            capsys, "timeline", "reyes", "--model", "megakernel"
        )
        assert code == 0
        assert "SM00 |" in out
        assert "legend:" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_model_choice_errors(self):
        with pytest.raises(SystemExit):
            main(["run", "reyes", "--model", "warpdrive"])


class TestBatchingFlags:
    def test_batch_size_accepted_everywhere(self, capsys):
        code, _ = run_cli(capsys, "run", "ldpc", "--batch-size", "1")
        assert code == 0
        code, _ = run_cli(capsys, "compare", "ldpc", "--batch-size", "4")
        assert code == 0

    def test_batch_size_preserves_schedule(self, capsys):
        _, scalar = run_cli(
            capsys, "run", "reyes", "--batch-size", "1",
            "--no-replay-cache",
        )
        _, batched = run_cli(capsys, "run", "reyes")
        assert scalar == batched

    def test_stats_reports_batching_line(self, capsys):
        code, out = run_cli(capsys, "stats", "ldpc")
        assert code == 0
        assert "batching: batch-size=unlimited" in out
        assert "workers=1" in out
        assert "replay cache: on" in out

    def test_stats_reports_per_run_cache_numbers(self, capsys):
        code, out = run_cli(capsys, "stats", "ldpc")
        assert code == 0
        # A fresh run records once and replays nothing.
        assert "last run: 0 hits / 1 misses" in out

    def test_stats_reports_cache_disabled(self, capsys):
        code, out = run_cli(capsys, "stats", "ldpc", "--no-replay-cache")
        assert code == 0
        assert "replay cache: off (--no-replay-cache)" in out

    def test_no_replay_cache_same_output(self, capsys):
        _, cached = run_cli(capsys, "compare", "ldpc")
        _, uncached = run_cli(
            capsys, "compare", "ldpc", "--no-replay-cache"
        )
        assert cached == uncached


class TestArgValidation:
    """Zero/negative --batch-size and --workers are rejected up front."""

    @pytest.mark.parametrize("value", ["0", "-3", "banana"])
    @pytest.mark.parametrize("flag", ["--batch-size", "--workers"])
    def test_bad_values_rejected(self, capsys, flag, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "ldpc", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err

    def test_bench_and_compare_validate_too(self, capsys):
        for argv in (
            ["bench", "ldpc", "--workers", "0"],
            ["compare", "ldpc", "--batch-size", "-1"],
            ["tune", "ldpc", "--workers", "0"],
        ):
            with pytest.raises(SystemExit):
                main(argv)
            capsys.readouterr()


class TestBench:
    def test_bench_renders_figure11_and_summary(self, capsys):
        code, out = run_cli(
            capsys, "bench", "ldpc", "reyes", "--workers", "2"
        )
        assert code == 0
        assert "VP speedup" in out
        assert "suite: 6 cells" in out
        assert "workers=2" in out

    def test_bench_warm_disk_cache_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "traces")
        argv = (
            "bench", "ldpc", "reyes",
            "--workers", "2", "--trace-cache-dir", cache_dir,
        )
        code, cold = run_cli(capsys, *argv)
        assert code == 0
        code, warm = run_cli(capsys, *argv)
        assert code == 0
        # Warm invocation replays from disk: no misses, >=1 disk hit.
        assert "/ 0 misses" in warm
        import re

        assert re.search(r"disk: [1-9][0-9]* hits", warm)
        # The simulated tables are identical cold vs warm.
        table = lambda text: text.split("suite:")[0]  # noqa: E731
        assert table(cold) == table(warm)

    def test_bench_workers_byte_identical_tables(self, capsys, tmp_path):
        _, serial = run_cli(capsys, "bench", "ldpc", "--workers", "1")
        _, parallel = run_cli(capsys, "bench", "ldpc", "--workers", "4")
        table = lambda text: text.split("suite:")[0]  # noqa: E731
        assert table(serial) == table(parallel)

    def test_bench_json_written(self, capsys, tmp_path):
        path = tmp_path / "suite.json"
        code, out = run_cli(
            capsys, "bench", "ldpc", "--workers", "2",
            "--bench-json", str(path),
        )
        assert code == 0
        assert f"wrote bench json: {path}" in out
        payload = json.loads(path.read_text())
        assert set(payload) == {"meta", "results"}
        meta = payload["meta"]
        assert meta["schema_version"] >= 1
        assert meta["workers"] == 2
        assert meta["cpu_count"] >= 1
        assert "cache_dir" in meta
        results = payload["results"]
        assert set(results) == {"ldpc"}
        assert set(results["ldpc"]["K20c"]) == {
            "baseline", "megakernel", "versapipe"
        }
        cell = results["ldpc"]["K20c"]["versapipe"]
        assert cell["time_ms"] > 0 and cell["cycles"] > 0
        assert "replayed" not in cell

    def test_bench_all_devices(self, capsys):
        code, out = run_cli(
            capsys, "bench", "ldpc", "--device", "all", "--workers", "2"
        )
        assert code == 0
        assert "[K20c]" in out and "[GTX1080]" in out
        # The PP-Gaia presets joined the sweep: 7 devices x 3 models.
        assert "[H100]" in out and "[T4]" in out and "[MI250X]" in out
        assert "suite: 21 cells" in out

    def test_bench_unknown_workload_raises(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "bench", "tetris")


class TestServe:
    def test_serve_smoke(self, capsys):
        code, out = run_cli(
            capsys, "serve", "ldpc",
            "--arrival", "poisson:0.5", "--duration", "8",
        )
        assert code == 0
        assert "serve ldpc/versapipe/K20c" in out
        assert "p50=" in out and "p999=" in out
        assert "goodput=" in out and "SLO" in out
        assert "stage " in out

    def test_serve_report_json_and_trace(self, capsys, tmp_path):
        report_path = tmp_path / "serve.json"
        trace_path = tmp_path / "serve_trace.json"
        code, out = run_cli(
            capsys, "serve", "ldpc",
            "--arrival", "poisson:0.5", "--duration", "8",
            "--report-json", str(report_path),
            "--trace-out", str(trace_path),
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert set(payload) == {"meta", "cells", "merged"}
        assert payload["meta"]["schema_version"] >= 1
        assert payload["meta"]["cpu_count"] >= 1
        cell = payload["cells"]["ldpc"]
        assert cell["completed"] == cell["requests"] > 0
        assert cell["latency"]["p99_ms"] >= cell["latency"]["p50_ms"] > 0
        assert cell["slo"]["good"] + cell["slo"]["violations"] == (
            cell["completed"]
        )
        trace = json.loads(trace_path.read_text())
        phases = {
            e.get("ph")
            for e in trace["traceEvents"]
            if e.get("cat") == "request"
        }
        assert {"s", "t", "f"} <= phases

    def test_serve_workers_byte_identical_reports(self, capsys, tmp_path):
        def non_meta(path):
            payload = json.loads(path.read_text())
            payload.pop("meta")
            return json.dumps(payload, sort_keys=True)

        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        argv = (
            "serve", "ldpc", "reyes", "--arrival", "poisson:0.5",
            "--duration", "6",
        )
        code, _ = run_cli(
            capsys, *argv, "--workers", "1", "--report-json", str(serial)
        )
        assert code == 0
        code, _ = run_cli(
            capsys, *argv, "--workers", "3", "--report-json", str(parallel)
        )
        assert code == 0
        assert non_meta(serial) == non_meta(parallel)

    def test_serve_multi_workload_prints_merged(self, capsys):
        code, out = run_cli(
            capsys, "serve", "ldpc", "reyes", "--duration", "5",
        )
        assert code == 0
        assert "merged:" in out

    def test_serve_trace_out_single_workload_only(self, capsys, tmp_path):
        code = main([
            "serve", "ldpc", "reyes",
            "--trace-out", str(tmp_path / "t.json"),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "exactly one workload" in captured.err

    @pytest.mark.parametrize(
        "argv",
        [
            ("serve", "ldpc", "--duration", "0"),
            ("serve", "ldpc", "--duration", "-5"),
            ("serve", "ldpc", "--slo-ms", "0"),
            ("serve", "ldpc", "--window-ms", "nope"),
            ("serve", "ldpc", "--arrival", "poisson:0"),
            ("serve", "ldpc", "--arrival", "poisson:abc"),
            ("serve", "ldpc", "--arrival", "burst:1,2"),
            ("serve", "ldpc", "--arrival", "uniform:3"),
            ("serve", "ldpc", "--workers", "0"),
            ("serve", "ldpc", "--batch-size", "-1"),
        ],
    )
    def test_serve_flag_validation(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(list(argv))
        assert excinfo.value.code == 2

    def test_serve_unknown_workload_raises(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "serve", "tetris")


class TestCompareWorkers:
    def test_compare_workers_matches_serial(self, capsys, tmp_path):
        _, serial = run_cli(capsys, "compare", "ldpc")
        _, parallel = run_cli(
            capsys, "compare", "ldpc", "--workers", "4",
            "--trace-cache-dir", str(tmp_path / "traces"),
        )
        # The parallel run appends a cache/worker summary line; the
        # simulated rows above it are byte-identical.
        assert parallel.startswith(serial.rstrip("\n").rsplit("\n", 1)[0])
        for line in serial.splitlines():
            if "ms" in line or "speedup" in line:
                assert line in parallel
        assert "workers=4" in parallel
