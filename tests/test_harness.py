"""Evaluation-harness tests: runner cells, table rendering, longest stage."""

import pytest

from repro.gpu.specs import GTX1080, K20C
from repro.harness.runner import (
    aggregate_reports,
    longest_stage_ms,
    run_cell,
    run_versapipe,
    run_workload_models,
)
from repro.harness.tables import (
    format_table,
    ratio,
    render_figure11,
    render_table2,
)
from repro.core.models import MegakernelModel
from repro.workloads.registry import all_workloads, get_workload


@pytest.fixture(scope="module")
def reyes_cells():
    spec = get_workload("reyes")
    params = spec.quick_params()
    return {
        "reyes": run_workload_models("reyes", K20C, params=params)
    }


class TestRunner:
    def test_run_cell_checks_outputs(self):
        spec = get_workload("ldpc")
        cell = run_cell(
            spec, MegakernelModel(), K20C, spec.quick_params()
        )
        assert cell.workload == "ldpc"
        assert cell.model == "megakernel"
        assert cell.device == "K20c"
        assert cell.time_ms > 0

    def test_scaled_ms_applies_time_scale(self):
        from repro.workloads import cfd

        spec = get_workload("cfd")
        params = cfd.CFDParams(
            num_chunks=2, chunk_cells=64, outer_iterations=4
        )
        cell = run_cell(spec, MegakernelModel(), K20C, params)
        assert cell.scaled_ms == pytest.approx(
            cell.time_ms * cfd.time_scale(params)
        )

    def test_run_versapipe_picks_best_candidate(self):
        spec = get_workload("pyramid")
        params = spec.quick_params()
        vp = run_versapipe(spec, K20C, params)
        # It must never be slower than the plain described config would
        # imply, because the described config is one of its candidates.
        from repro.core.models import HybridModel

        pipeline = spec.build_pipeline(params)
        described = spec.versapipe_config(pipeline, K20C, params)
        described_cell = run_cell(
            spec, HybridModel(described), K20C, params
        )
        assert vp.time_ms <= described_cell.time_ms * 1.001

    def test_run_workload_models_columns(self, reyes_cells):
        columns = reyes_cells["reyes"]
        assert set(columns) == {"baseline", "megakernel", "versapipe"}
        assert columns["baseline"].model == "KBK"

    def test_device_label_propagates(self):
        spec = get_workload("ldpc")
        cell = run_cell(
            spec, MegakernelModel(), GTX1080, spec.quick_params()
        )
        assert cell.device == "GTX1080"


class TestObservedCells:
    def test_observe_attaches_labelled_report(self):
        spec = get_workload("ldpc")
        cell = run_cell(
            spec, MegakernelModel(), K20C, spec.quick_params(), observe=True
        )
        report = cell.result.report
        assert report is not None
        assert report.label == "ldpc/megakernel/K20c"
        assert report.num_events > 0
        assert report.elapsed_ms == pytest.approx(cell.time_ms, rel=1e-6)

    def test_observe_defaults_off(self):
        spec = get_workload("ldpc")
        cell = run_cell(spec, MegakernelModel(), K20C, spec.quick_params())
        assert cell.result.report is None

    def test_workload_models_observe_passthrough(self):
        cells = run_workload_models(
            "reyes", K20C, params=get_workload("reyes").quick_params(),
            observe=True,
        )
        for name, cell in cells.items():
            assert cell.result.report is not None, name

    def test_aggregate_reports_rolls_up_sweep(self):
        spec = get_workload("reyes")
        params = spec.quick_params()
        cells = list(
            run_workload_models("reyes", K20C, params=params,
                                observe=True).values()
        )
        sweep = aggregate_reports(cells, label="reyes-sweep")
        assert sweep.label == "reyes-sweep"
        assert sweep.runs == len(cells)
        assert sweep.num_events == sum(
            cell.result.report.num_events for cell in cells
        )

    def test_aggregate_skips_unobserved_cells(self):
        spec = get_workload("ldpc")
        observed = run_cell(
            spec, MegakernelModel(), K20C, spec.quick_params(), observe=True
        )
        plain = run_cell(
            spec, MegakernelModel(), K20C, spec.quick_params()
        )
        sweep = aggregate_reports([observed, plain])
        assert sweep.runs == 1


class TestLongestStage:
    def test_longest_stage_below_pipeline_time(self):
        spec = get_workload("reyes")
        params = spec.quick_params()
        stage, stage_ms = longest_stage_ms(spec, K20C, params)
        assert stage in ("split", "dice", "shade")
        assert stage_ms > 0
        vp = run_versapipe(spec, K20C, params)
        assert stage_ms <= vp.time_ms * 1.2


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            ratio(1.0, 0.0)

    def test_render_table2_mentions_paper_numbers(self, reyes_cells):
        text = render_table2(reyes_cells, all_workloads())
        assert "reyes" in text
        assert "(15.6)" in text  # paper baseline
        assert "272B" in text

    def test_render_figure11_reports_speedups(self, reyes_cells):
        text = render_figure11(reyes_cells, all_workloads(), "K20c")
        assert "reyes" in text
        assert "x" in text
        assert "geomean" in text
