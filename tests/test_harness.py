"""Evaluation-harness tests: runner cells, table rendering, longest stage."""

import pytest

from repro.gpu.specs import GTX1080, K20C
from repro.harness.runner import (
    longest_stage_ms,
    run_cell,
    run_versapipe,
    run_workload_models,
)
from repro.harness.tables import (
    format_table,
    ratio,
    render_figure11,
    render_table2,
)
from repro.core.models import MegakernelModel
from repro.workloads.registry import all_workloads, get_workload


@pytest.fixture(scope="module")
def reyes_cells():
    spec = get_workload("reyes")
    params = spec.quick_params()
    return {
        "reyes": run_workload_models("reyes", K20C, params=params)
    }


class TestRunner:
    def test_run_cell_checks_outputs(self):
        spec = get_workload("ldpc")
        cell = run_cell(
            spec, MegakernelModel(), K20C, spec.quick_params()
        )
        assert cell.workload == "ldpc"
        assert cell.model == "megakernel"
        assert cell.device == "K20c"
        assert cell.time_ms > 0

    def test_scaled_ms_applies_time_scale(self):
        from repro.workloads import cfd

        spec = get_workload("cfd")
        params = cfd.CFDParams(
            num_chunks=2, chunk_cells=64, outer_iterations=4
        )
        cell = run_cell(spec, MegakernelModel(), K20C, params)
        assert cell.scaled_ms == pytest.approx(
            cell.time_ms * cfd.time_scale(params)
        )

    def test_run_versapipe_picks_best_candidate(self):
        spec = get_workload("pyramid")
        params = spec.quick_params()
        vp = run_versapipe(spec, K20C, params)
        # It must never be slower than the plain described config would
        # imply, because the described config is one of its candidates.
        from repro.core.models import HybridModel

        pipeline = spec.build_pipeline(params)
        described = spec.versapipe_config(pipeline, K20C, params)
        described_cell = run_cell(
            spec, HybridModel(described), K20C, params
        )
        assert vp.time_ms <= described_cell.time_ms * 1.001

    def test_run_workload_models_columns(self, reyes_cells):
        columns = reyes_cells["reyes"]
        assert set(columns) == {"baseline", "megakernel", "versapipe"}
        assert columns["baseline"].model == "KBK"

    def test_device_label_propagates(self):
        spec = get_workload("ldpc")
        cell = run_cell(
            spec, MegakernelModel(), GTX1080, spec.quick_params()
        )
        assert cell.device == "GTX1080"


class TestLongestStage:
    def test_longest_stage_below_pipeline_time(self):
        spec = get_workload("reyes")
        params = spec.quick_params()
        stage, stage_ms = longest_stage_ms(spec, K20C, params)
        assert stage in ("split", "dice", "shade")
        assert stage_ms > 0
        vp = run_versapipe(spec, K20C, params)
        assert stage_ms <= vp.time_ms * 1.2


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            ratio(1.0, 0.0)

    def test_render_table2_mentions_paper_numbers(self, reyes_cells):
        text = render_table2(reyes_cells, all_workloads())
        assert "reyes" in text
        assert "(15.6)" in text  # paper baseline
        assert "272B" in text

    def test_render_figure11_reports_speedups(self, reyes_cells):
        text = render_figure11(reyes_cells, all_workloads(), "K20c")
        assert "reyes" in text
        assert "x" in text
        assert "geomean" in text
