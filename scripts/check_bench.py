#!/usr/bin/env python3
"""CI benchmark regression gate.

Compares a freshly generated ``BENCH_*.json`` against the committed
baseline and fails when throughput regresses beyond a threshold.

Both files are arbitrary nested JSON; every numeric leaf whose key ends
in ``_ms`` (a timing) or ``_cost`` (a machine-normalised overhead ratio,
e.g. the simulator speed gate's ``event_cost``) is treated as a
*lower-is-better* metric.  The gate
statistic is the geometric mean of the per-metric ``current/baseline``
ratios over the metrics present in both files — a geomean above
``1 + threshold`` means throughput dropped by more than the allowed
slice and the check fails.  Metrics present in only one file are
reported but do not fail the gate (workloads come and go); zero or
negative baselines are skipped.

A second, independent gate class sets **hard floors**: ``--min
PATH=VALUE`` (repeatable) requires the numeric leaf at ``PATH`` in the
*current* file to be strictly greater than ``VALUE``.  Floors are
absolute claims about the current run — "warm-parallel actually beats
cold" — not drift budgets, so they apply to any numeric leaf (no suffix
filtering), ignore the baseline entirely, and a missing or non-numeric
leaf fails the gate rather than passing silently.

Usage::

    python scripts/check_bench.py \
        --baseline benchmarks/baselines/BENCH_fig11.json \
        --current BENCH_fig11.json \
        --threshold 0.10 \
        --min suite.warm_parallel_speedup=1.0

Exit codes: 0 = within budget, 1 = regression/floor violation,
2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Iterator

#: Keys ending in one of these are gated metrics (lower is better):
#: ``_ms`` for timings, ``_cost`` for dimensionless normalised overheads
#: (insensitive to how fast the CI host happens to be).
METRIC_SUFFIXES = ("_ms", "_cost")


def iter_metrics(node, path: str = "") -> Iterator[tuple[str, float]]:
    """Yield (json-path, value) for every timing leaf under ``node``."""
    if isinstance(node, dict):
        for key in sorted(node):
            child_path = f"{path}.{key}" if path else str(key)
            yield from iter_metrics(node[key], child_path)
    elif isinstance(node, list):
        for idx, child in enumerate(node):
            yield from iter_metrics(child, f"{path}[{idx}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        leaf = path.rsplit(".", 1)[-1]
        if leaf.endswith(METRIC_SUFFIXES) and math.isfinite(node):
            yield path, float(node)


def iter_numeric_leaves(node, path: str = "") -> Iterator[tuple[str, float]]:
    """Yield (json-path, value) for *every* numeric leaf under ``node``.

    Unlike :func:`iter_metrics` no suffix filter applies: floor gates
    may anchor on any quantity the benchmark records (speedups, hit
    counts), not just the lower-is-better drift metrics.
    """
    if isinstance(node, dict):
        for key in sorted(node):
            child_path = f"{path}.{key}" if path else str(key)
            yield from iter_numeric_leaves(node[key], child_path)
    elif isinstance(node, list):
        for idx, child in enumerate(node):
            yield from iter_numeric_leaves(child, f"{path}[{idx}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if math.isfinite(node):
            yield path, float(node)


def parse_min_spec(spec: str) -> tuple[str, float]:
    """Split one ``--min PATH=VALUE`` argument; raises ValueError."""
    path, sep, raw = spec.partition("=")
    if not sep or not path:
        raise ValueError(f"--min expects PATH=VALUE, got {spec!r}")
    return path, float(raw)


def check_floors(
    current: dict[str, float], floors: list[tuple[str, float]]
) -> tuple[bool, str]:
    """Apply every ``--min`` floor to the current file's numeric leaves.

    Returns (ok, report).  A floor whose path is absent from the current
    file *fails* — a benchmark that silently stopped emitting the gated
    quantity must not turn the gate green.
    """
    ok = True
    lines = []
    for path, minimum in floors:
        value = current.get(path)
        if value is None:
            ok = False
            lines.append(
                f"  {path}: MISSING (floor > {minimum:g})  <-- no such "
                f"numeric leaf in current file"
            )
        elif value > minimum:
            lines.append(f"  {path}: {value:.4f} > {minimum:g}  ok")
        else:
            ok = False
            lines.append(
                f"  {path}: {value:.4f} <= {minimum:g}  <-- below floor"
            )
    lines.append(
        "floors PASS" if ok else "floors FAIL: hard minimum not met"
    )
    return ok, "\n".join(lines)


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> tuple[bool, str]:
    """Return (ok, human-readable report)."""
    shared = [
        key
        for key in sorted(baseline)
        if key in current and baseline[key] > 0 and current[key] > 0
    ]
    lines = []
    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    if missing:
        lines.append(f"note: {len(missing)} baseline metric(s) absent: "
                     + ", ".join(missing[:5]))
    if added:
        lines.append(f"note: {len(added)} new metric(s) without baseline: "
                     + ", ".join(added[:5]))
    if not shared:
        lines.append("error: no comparable metrics between the two files")
        return False, "\n".join(lines)

    log_sum = 0.0
    worst_key, worst_ratio = "", 0.0
    for key in shared:
        ratio = current[key] / baseline[key]
        log_sum += math.log(ratio)
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "  <-- slower than budget"
        lines.append(
            f"  {key}: {baseline[key]:.4f} -> {current[key]:.4f} "
            f"({ratio:.3f}x){flag}"
        )
        if ratio > worst_ratio:
            worst_key, worst_ratio = key, ratio
    geomean = math.exp(log_sum / len(shared))
    lines.append(
        f"geomean time ratio over {len(shared)} metric(s): {geomean:.4f} "
        f"(budget <= {1.0 + threshold:.2f})"
    )
    lines.append(f"worst metric: {worst_key} at {worst_ratio:.3f}x")
    ok = geomean <= 1.0 + threshold
    lines.append("PASS" if ok else
                 f"FAIL: geomean throughput regressed beyond "
                 f"{threshold:.0%} budget")
    return ok, "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH json")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed geomean slowdown (default 0.10 = 10%%)")
    parser.add_argument("--min", dest="floors", action="append",
                        default=[], metavar="PATH=VALUE",
                        help="hard floor: the numeric leaf at PATH in the "
                        "current file must be strictly greater than VALUE "
                        "(repeatable; missing leaves fail)")
    args = parser.parse_args(argv)
    try:
        floors = [parse_min_spec(spec) for spec in args.floors]
    except ValueError as exc:
        print(f"check_bench: {exc}", file=sys.stderr)
        return 2
    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline_payload = json.load(fh)
        with open(args.current, "r", encoding="utf-8") as fh:
            current_payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_bench: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    baseline = dict(iter_metrics(baseline_payload))
    current = dict(iter_metrics(current_payload))
    ok, report = compare(baseline, current, args.threshold)
    print(f"== check_bench: {args.current} vs {args.baseline} ==")
    print(report)
    if floors:
        floors_ok, floors_report = check_floors(
            dict(iter_numeric_leaves(current_payload)), floors
        )
        print(f"== check_bench floors: {args.current} ==")
        print(floors_report)
        ok = ok and floors_ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
