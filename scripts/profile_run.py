#!/usr/bin/env python3
"""Profile one simulated run so perf PRs start from data, not guesses.

Runs a workload under one execution model with ``cProfile`` and prints
the top-N functions by cumulative and by self time, plus an events/sec
summary from the device engine.  Two optional outputs:

* ``--callgrind FILE`` — write the cProfile stats in callgrind format
  (pure-Python converter, no extra dependencies) for kcachegrind /
  qcachegrind / speedscope.
* ``--pyinstrument`` — additionally render a wall-clock call tree with
  `pyinstrument <https://github.com/joerick/pyinstrument>`_ when it is
  installed; silently skipped (with a note) when it is not.

Usage::

    PYTHONPATH=src python scripts/profile_run.py synthetic --model megakernel
    PYTHONPATH=src python scripts/profile_run.py reyes --model versapipe -n 40
    PYTHONPATH=src python scripts/profile_run.py face_detection \
        --callgrind callgrind.out.face

``synthetic`` is the deep-pipeline stress case also used by
``benchmarks/bench_simspeed.py``; every registry workload name
(``reyes``, ``face_detection``, ...) works too.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.executor import FunctionalExecutor  # noqa: E402
from repro.core.models import HybridModel, KBKModel, MegakernelModel  # noqa: E402
from repro.gpu.device import GPUDevice  # noqa: E402
from repro.gpu.specs import GTX1080, K20C  # noqa: E402

_DEVICES = {"K20c": K20C, "GTX1080": GTX1080}


def build_case(workload: str, model_name: str, device_name: str):
    """Return ``(pipeline, model, device, initial_items)`` for one run."""
    spec = _DEVICES[device_name]
    if workload == "synthetic":
        from repro.workloads import synthetic

        params = synthetic.SyntheticParams.uniform(
            num_stages=10, registers=64, mean_cycles=600.0, num_items=256
        )
        pipeline = synthetic.build_pipeline(params)
        initial = synthetic.initial_items(params)
        versapipe_config = None
    else:
        from repro.workloads.registry import get_workload

        wspec = get_workload(workload)
        params = wspec.quick_params()
        pipeline = wspec.build_pipeline(params)
        initial = wspec.initial_items(params)
        versapipe_config = wspec.versapipe_config

    if model_name == "megakernel":
        model = MegakernelModel()
    elif model_name == "kbk":
        model = KBKModel()
    elif model_name == "versapipe":
        if versapipe_config is None:
            raise SystemExit(
                "synthetic has no paper-described config; use --model megakernel"
            )
        model = HybridModel(versapipe_config(pipeline, spec, params))
    else:
        raise SystemExit(f"unknown model {model_name!r}")
    return pipeline, model, GPUDevice(spec), initial


def write_callgrind(stats: pstats.Stats, path: str) -> None:
    """Dump cProfile stats as a callgrind file (times in microseconds)."""
    with open(path, "w", encoding="utf-8") as out:
        out.write("# callgrind format\n")
        out.write("version: 1\ncreator: scripts/profile_run.py\n")
        out.write("events: us\n\n")
        for func, (_cc, _nc, tt, _ct, _callers) in stats.stats.items():
            filename, line, name = func
            out.write(f"fl={filename}\n")
            out.write(f"fn={name} [{filename}:{line}]\n")
            out.write(f"{max(line, 0)} {int(tt * 1e6)}\n")
            out.write("\n")
        # Second pass: call edges, grouped by caller.
        edges: dict[tuple, list[tuple]] = {}
        for callee, (_cc, _nc, _tt, _ct, callers) in stats.stats.items():
            for caller, (_ccc, ncc, _ctt, cct) in callers.items():
                edges.setdefault(caller, []).append((callee, ncc, cct))
        for caller, callee_list in edges.items():
            cfile, cline, cname = caller
            out.write(f"fl={cfile}\n")
            out.write(f"fn={cname} [{cfile}:{cline}]\n")
            for (kfile, kline, kname), ncalls, cum in callee_list:
                out.write(f"cfl={kfile}\n")
                out.write(f"cfn={kname} [{kfile}:{kline}]\n")
                out.write(f"calls={ncalls} {max(kline, 0)}\n")
                out.write(f"{max(cline, 0)} {int(cum * 1e6)}\n")
            out.write("\n")
    print(f"callgrind profile written to {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workload", help="'synthetic' or any registry workload")
    parser.add_argument("--model", default="megakernel",
                        choices=("megakernel", "versapipe", "kbk"))
    parser.add_argument("--device", default="K20c", choices=sorted(_DEVICES))
    parser.add_argument("-n", "--top", type=int, default=25,
                        help="rows per ranking table (default 25)")
    parser.add_argument("--callgrind", metavar="FILE", default=None,
                        help="also write stats in callgrind format")
    parser.add_argument("--pyinstrument", action="store_true",
                        help="also render a pyinstrument tree (if installed)")
    args = parser.parse_args(argv)

    pipeline, model, device, initial = build_case(
        args.workload, args.model, args.device
    )
    executor = FunctionalExecutor(pipeline)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = model.run(pipeline, device, executor, initial)
    profiler.disable()
    wall = time.perf_counter() - start

    events = device.engine.events_processed
    print(f"== {args.workload} / {args.model} / {args.device} ==")
    print(f"simulated time : {result.time_ms:10.3f} ms")
    print(f"wall time      : {wall:10.3f} s")
    print(f"events         : {events:10d} "
          f"({events / wall:,.0f} events/s)")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"\n-- top {args.top} by cumulative time --")
    stats.print_stats(args.top)
    stats.sort_stats("tottime")
    print(f"-- top {args.top} by self time --")
    stats.print_stats(args.top)

    if args.callgrind:
        write_callgrind(stats, args.callgrind)

    if args.pyinstrument:
        try:
            from pyinstrument import Profiler
        except ImportError:
            print("pyinstrument not installed; skipping tree profile "
                  "(pip install pyinstrument)")
        else:
            pipeline, model, device, initial = build_case(
                args.workload, args.model, args.device
            )
            tree = Profiler()
            tree.start()
            model.run(pipeline, device, FunctionalExecutor(pipeline), initial)
            tree.stop()
            print(tree.output_text(unicode=True, color=False))
    return 0


if __name__ == "__main__":
    sys.exit(main())
