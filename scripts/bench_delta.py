#!/usr/bin/env python3
"""Render a BENCH json delta as a Markdown summary table.

Reads the committed baseline and a freshly generated ``BENCH_*.json``
and emits a table of every numeric leaf — baseline value, current value,
and the relative delta — so a PR's benchmark movement is readable at a
glance in the GitHub step summary and in the uploaded artifact, without
digging through raw JSON.

Purely informational: unlike ``check_bench.py`` this never fails the
build (exit 0 even when metrics moved); leaves present in only one file
are listed with a ``—`` placeholder.

Usage::

    python scripts/bench_delta.py \
        --baseline benchmarks/baselines/BENCH_harness.json \
        --current BENCH_harness.json \
        --title "Harness suite" [--out bench_delta.md]

With ``--out`` the table is also written to a file (for artifact
upload); it always goes to stdout (for ``>> $GITHUB_STEP_SUMMARY``).
"""

from __future__ import annotations

import argparse
import json
import sys

from check_bench import iter_numeric_leaves


def _fmt(value: float | None) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4f}"


def render_delta(
    baseline: dict[str, float], current: dict[str, float], title: str
) -> str:
    lines = [
        f"### {title}",
        "",
        "| metric | baseline | current | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        if base is not None and cur is not None and base != 0:
            delta = f"{(cur - base) / abs(base):+.1%}"
        else:
            delta = "—"
        lines.append(
            f"| `{key}` | {_fmt(base)} | {_fmt(cur)} | {delta} |"
        )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--title", default="Benchmark delta")
    parser.add_argument("--out", default=None,
                        help="also write the table to this file")
    args = parser.parse_args(argv)
    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = dict(iter_numeric_leaves(json.load(fh)))
        with open(args.current, "r", encoding="utf-8") as fh:
            current = dict(iter_numeric_leaves(json.load(fh)))
    except (OSError, ValueError) as exc:
        print(f"bench_delta: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    table = render_delta(baseline, current, args.title)
    print(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
